"""Training loops: the generic simulator-set PPO trainer and Algorithm 1.

:class:`PolicyTrainer` implements the shared loop — sample an environment
from the simulator set, roll out, post-process, PPO-update — which is all
that DIRECT / DR-UNI / DR-OSI need (they differ only in policy class and
environment sampler). :class:`Sim2RecLTSTrainer` and
:class:`Sim2RecDPRTrainer` specialise it into the full Algorithm 1:

1. construct Ω' (done by the caller: LTS task sets / DEMER-style ensemble);
2. sample a simulator M_ω ~ p(Ω) and a group g ~ p(g)          (lines 4–5);
3. roll out τ with the T_c truncation                          (line 6);
4. add the uncertainty penalty r ← r − α U(s, a)               (line 8);
5. apply F_trend (user removal) and F_exec (done + R_min/(1−γ)) (line 9);
6. PPO update of (φ, π, f, q_κ) via Eq. (4) plus SADAE ELBO updates via
   Eq. (8)                                                      (line 10).
"""

from __future__ import annotations

import pickle
import time
import warnings
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..envs.base import MultiUserEnv
from ..envs.lts_tasks import LTSTask
from ..obs import JSONLMetricsSink, MetricsRegistry, PHASE_SECONDS_BUCKETS
from ..rl.buffer import RolloutBuffer, RolloutSegment
from ..rl.policies import ActorCriticBase
from ..rl.ppo import PPO
from ..rl.runner import collect_segment
from ..rl.vec import collect_segments_vec, split_rng
from ..rl.workers import ShardedVecEnvPool, sharding_available
from ..sim.dataset import TrajectoryDataset
from ..sim.ensemble import SimulatorEnsemble
from ..sim.env_wrapper import SimulatedDPREnv
from ..utils.logging import MetricLogger
from ..utils.seeding import make_rng
from .config import Sim2RecConfig
from .filters import (
    apply_exec_filter,
    apply_uncertainty_penalty,
    compute_trend_filter,
    filter_group_log,
)
from .policy import Sim2RecPolicy
from .sadae import train_sadae

EnvSampler = Callable[[np.random.Generator], MultiUserEnv]


def _poolable_batches(
    envs: Sequence[MultiUserEnv],
) -> List[List[Tuple[int, MultiUserEnv]]]:
    """Partition sampled envs into rounds that can share a VecEnvPool.

    A pool must not hold the same env object twice (block-diagonal
    stepping would corrupt its state) and members must agree on state and
    action dims; anything that does not fit the current round is deferred
    to a later one, preserving sampling order within each round.
    """
    remaining = list(enumerate(envs))
    batches: List[List[Tuple[int, MultiUserEnv]]] = []
    while remaining:
        reference = remaining[0][1]
        seen: set[int] = set()
        batch: List[Tuple[int, MultiUserEnv]] = []
        deferred: List[Tuple[int, MultiUserEnv]] = []
        for index, env in remaining:
            compatible = (
                id(env) not in seen
                and env.observation_dim == reference.observation_dim
                and env.action_dim == reference.action_dim
            )
            if compatible:
                seen.add(id(env))
                batch.append((index, env))
            else:
                deferred.append((index, env))
        batches.append(batch)
        remaining = deferred
    return batches


class PolicyTrainer:
    """Generic PPO training against a (sampled) set of environments."""

    def __init__(
        self,
        policy: ActorCriticBase,
        env_sampler: EnvSampler,
        config: Sim2RecConfig,
        logger: Optional[MetricLogger] = None,
    ):
        self.policy = policy
        self.env_sampler = env_sampler
        self.config = config
        self.ppo = PPO(policy, config.ppo)
        self.rng = make_rng(config.seed)
        self.logger = logger or MetricLogger()
        self._iteration = 0
        # Observability (docs/observability.md): wall-clock phase timings
        # and supervision counters live in a metrics registry, *never* in
        # the metrics dict ``train_iteration`` returns — that dict is the
        # determinism contract's witness and must stay timing-free. The
        # registry is also what the per-iteration JSONL sink
        # (``config.metrics_path``) snapshots.
        self.metrics = MetricsRegistry()
        self._m_phase = self.metrics.histogram(
            "train_phase_seconds",
            "wall-clock seconds per training phase",
            ("phase",),
            buckets=PHASE_SECONDS_BUCKETS,
        )
        self._m_iterations = self.metrics.counter(
            "train_iterations_total", "completed training iterations"
        )
        self._m_collect_lag = self.metrics.gauge(
            "train_collect_lag",
            "staleness of the last consumed rollout buffer in iterations "
            "(0 fresh, 1 prefetched under the pipelined contract)",
        )
        self._metrics_sink: Optional[JSONLMetricsSink] = None
        # Samplers with side effects (e.g. resampling user gaps on shared
        # env objects) need the sample→rollout interleaving of the
        # sequential path; subclasses set this to opt out of pooling.
        self._sequential_collect = False
        # Multi-process rollout workers (config.rollout_workers > 1): the
        # sharded pool is cached and its worker processes reused across
        # iterations whenever the sampled batch has the same layout.
        self._worker_pool: Optional[ShardedVecEnvPool] = None
        self._worker_pool_key: Optional[tuple] = None
        # Samplers that hand out *shared* env objects (the LTS task's
        # train envs) rely on env state continuity across iterations, so
        # worker-side state is synced back after each collection. Fresh-
        # env samplers (DPR) opt out to skip the transfer.
        self._sync_worker_envs = True
        # shard_parallel needs the policy itself to cross the process
        # boundary once; a policy that cannot be pickled (externally
        # attached loggers, lambdas, ...) degrades to step-server
        # sharding instead of failing the run (set on first failure).
        self._replica_unpicklable = False
        # Pipelined determinism: iteration N+1's collection, launched
        # before iteration N's update. Either finished segments (the
        # launch collected synchronously, or a checkpoint drained it) or
        # an async dispatch still rolling in the worker pool.
        self._prefetch: Optional[Dict[str, Any]] = None

    def close(self) -> None:
        """Release the rollout worker processes (idempotent, exception-safe).

        The cached pool reference is dropped *before* its ``close()``
        runs, so a teardown that raises (e.g. a worker that already
        crashed) still leaves the trainer in the no-pool state and a
        second ``close()`` is always a no-op. An in-flight prefetch is
        discarded with the pool (no side effect was committed at
        dispatch, so nothing is left half-applied).
        """
        self._prefetch = None
        sink, self._metrics_sink = self._metrics_sink, None
        if sink is not None:
            sink.close()
        pool, self._worker_pool = self._worker_pool, None
        self._worker_pool_key = None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "PolicyTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Observability plumbing --------------------------------------------
    @contextmanager
    def _phase_timer(self, phase: str) -> Iterator[None]:
        """Record the enclosed block's wall-clock under ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._m_phase.labels(phase).observe(time.perf_counter() - start)

    def _write_metrics_record(self, iteration: int, logged: Dict[str, float]) -> None:
        """Append one registry snapshot to ``config.metrics_path`` (lazy open)."""
        path = self.config.metrics_path
        if path is None:
            return
        if self._metrics_sink is None:
            self._metrics_sink = JSONLMetricsSink(path)
        self._metrics_sink.append(
            {
                "iteration": iteration,
                "logged": {key: float(value) for key, value in logged.items()},
                "metrics": self.metrics.snapshot(),
            }
        )

    def _finish_iteration(self, metrics: Dict[str, float]) -> Dict[str, float]:
        """Shared iteration epilogue: log, count, checkpoint, snapshot.

        Everything observability-related happens *after* the metrics dict
        is final, so instrumentation cannot perturb the values the
        determinism harness compares run-to-run.
        """
        config = self.config
        iteration = self._iteration
        self.logger.log(iteration, **metrics)
        self._iteration += 1
        self._m_iterations.inc()
        if (
            config.checkpoint_every > 0
            and config.checkpoint_path is not None
            and self._iteration % config.checkpoint_every == 0
        ):
            with self._phase_timer("checkpoint"):
                self.save_checkpoint(config.checkpoint_path)
        self._write_metrics_record(iteration, metrics)
        return metrics

    # Worker-pool plumbing ----------------------------------------------
    def _effective_workers(self, batch_size: int) -> int:
        if self.config.resolved_rollout_mode() not in ("sharded", "shard_parallel"):
            return 1
        workers = min(self.config.rollout_workers, batch_size)
        if workers <= 1 or not sharding_available():
            return 1  # in-process VecEnvPool path
        return workers

    def _sharded_pool(self, envs: Sequence[MultiUserEnv], workers: int) -> ShardedVecEnvPool:
        key = (
            workers,
            tuple(env.num_users for env in envs),
            envs[0].observation_dim,
            envs[0].action_dim,
            self.config.fault_policy,
        )
        if self._worker_pool is not None and self._worker_pool.closed:
            # A crash (WorkerCrashed / WorkerStepError / StaleReplicaError)
            # closes the pool behind our back; drop the stale handle
            # instead of feeding load_envs to dead workers.
            self.close()
        if self._worker_pool is not None and key == self._worker_pool_key:
            self._worker_pool.load_envs(envs)
            return self._worker_pool
        # Layout or worker count changed since the last collect: the old
        # pool (processes + shared memory) must go before a new one
        # replaces it.
        self.close()
        self._worker_pool = ShardedVecEnvPool(
            envs, num_workers=workers, fault_policy=self.config.fault_policy
        )
        self._worker_pool.set_metrics(self.metrics)
        self._worker_pool_key = key
        return self._worker_pool

    def _collect_pooled(
        self, envs: List[MultiUserEnv], streams: List[np.random.Generator]
    ) -> List[RolloutSegment]:
        """One pooled rollout round, dispatched on the resolved mode."""
        workers = self._effective_workers(len(envs))
        if workers <= 1:
            if self._worker_pool is not None:
                # rollout_workers (or the mode) changed to an in-process
                # setting between collect() calls: the cached sharded
                # pool would otherwise leak its worker processes.
                self.close()
            return collect_segments_vec(
                envs, self.policy, streams, max_steps=self.config.truncate_horizon
            )
        pool = self._sharded_pool(envs, workers)
        replicas = (
            self.config.resolved_rollout_mode() == "shard_parallel"
            and not self._replica_unpicklable
        )
        if replicas:
            # Full rollouts in the workers: broadcast this iteration's
            # policy parameters once, then every shard runs its own
            # act->step->record loop against its replica.
            try:
                pool.sync_policy(self.policy)
            except (TypeError, AttributeError, pickle.PicklingError) as error:
                if pool.replica_version != 0 or self.config.rollout_mode is not None:
                    # A previously-syncable policy failing is a real bug,
                    # and an *explicitly requested* shard_parallel mode
                    # must be honoured or fail loudly — only the derived
                    # default degrades.
                    raise
                warnings.warn(
                    f"policy cannot be shipped to rollout workers ({error!r}); "
                    "degrading to step-server sharding (rollout_mode='sharded') "
                    "for the rest of this run",
                    RuntimeWarning,
                    stacklevel=3,
                )
                # Pickling fails before anything reaches a pipe, so the
                # already-built pool is untouched and usable as-is.
                self._replica_unpicklable = True
                replicas = False
        if replicas:
            segments = pool.collect_rollouts(
                streams, max_steps=self.config.truncate_horizon
            )
        else:
            segments = collect_segments_vec(
                pool, self.policy, streams, max_steps=self.config.truncate_horizon
            )
        if self._sync_worker_envs:
            # Pull the advanced env state (RNG streams, episode state)
            # back into the parent's objects: samplers that reuse envs
            # across iterations stay bit-identical to in-process runs.
            for mine, theirs in zip(envs, pool.fetch_member_envs()):
                vars(mine).update(vars(theirs))
        return segments

    # Hooks specialised by Sim2Rec trainers ------------------------------
    def post_process_segment(self, segment: RolloutSegment, env: MultiUserEnv) -> None:
        """Reward/done post-processing before GAE (Alg. 1 lines 8–9)."""

    def after_update(self) -> None:
        """Extra learning steps after PPO (the Eq. 8 SADAE update)."""

    # --------------------------------------------------------------------
    def collect(self) -> Tuple[RolloutBuffer, List[float]]:
        """Sample simulators and roll the policy out in each (Alg. 1 l. 4–6).

        The collection path follows ``config.resolved_rollout_mode()``:
        ``"sequential"`` rolls simulators one at a time; the pooled modes
        sample the iteration's simulators up front and drive them
        together through a :class:`~repro.rl.vec.VecEnvPool`
        (``"vectorized"``), a step-server
        :class:`~repro.rl.workers.ShardedVecEnvPool` with overlapped
        stepping (``"sharded"``), or worker-side policy replicas running
        the entire collection loop per shard (``"shard_parallel"``) —
        bit-identical segments in every pooled mode. Environments that
        cannot share a pool (duplicate objects from samplers that reuse
        env instances, or mismatched state/action dims) fall back to
        additional pool rounds or the sequential path.
        """
        config = self.config
        buffer = RolloutBuffer()
        raw_rewards: List[float] = []
        if config.resolved_rollout_mode() == "sequential" or self._sequential_collect:
            for _ in range(config.segments_per_iteration):
                env = self.env_sampler(self.rng)
                segment = collect_segment(
                    env, self.policy, self.rng, max_steps=config.truncate_horizon
                )
                raw_rewards.append(float(segment.rewards.sum(axis=0).mean()))
                self.post_process_segment(segment, env)
                buffer.add(segment)
            return buffer, raw_rewards

        envs = [self.env_sampler(self.rng) for _ in range(config.segments_per_iteration)]
        streams = split_rng(self.rng, len(envs))
        segments = self._collect_batches(envs, streams)
        for env, segment in zip(envs, segments):
            raw_rewards.append(float(segment.rewards.sum(axis=0).mean()))
            self.post_process_segment(segment, env)
            buffer.add(segment)
        return buffer, raw_rewards

    def _collect_batches(
        self,
        envs: Sequence[MultiUserEnv],
        streams: List[np.random.Generator],
        batches: Optional[List[List[Tuple[int, MultiUserEnv]]]] = None,
    ) -> List[RolloutSegment]:
        """Collect one segment per sampled env, pool round by pool round."""
        if batches is None:
            batches = _poolable_batches(envs)
        segments: List[Optional[RolloutSegment]] = [None] * len(envs)
        for batch in batches:
            if len(batch) == 1:
                index, env = batch[0]
                segments[index] = collect_segment(
                    env,
                    self.policy,
                    streams[index],
                    max_steps=self.config.truncate_horizon,
                )
            else:
                indices = [index for index, _ in batch]
                collected = self._collect_pooled(
                    [env for _, env in batch],
                    [streams[index] for index in indices],
                )
                for index, segment in zip(indices, collected):
                    segments[index] = segment
        return segments

    # Pipelined determinism (config.determinism == "pipelined") ----------
    def _begin_collect(self) -> Dict[str, Any]:
        """Sample this collection's simulators and start collecting.

        The launch half of the pipelined schedule: every RNG draw that
        shapes the collection (env sampling, stream splitting) happens
        here, so the trajectory is fixed at launch time no matter when —
        or where — the rollouts actually run. When the iteration is one
        shard_parallel round over a multi-env batch, the rollout is
        dispatched asynchronously and the returned pending holds the
        live pool; every other setup (sequential/interleaved samplers,
        in-process pools, multi-round batches) collects synchronously
        right here, which executes the *same* schedule without overlap —
        pipelined trajectories are therefore identical across worker
        counts.
        """
        config = self.config
        if config.resolved_rollout_mode() == "sequential" or self._sequential_collect:
            envs: List[MultiUserEnv] = []
            segments: List[RolloutSegment] = []
            for _ in range(config.segments_per_iteration):
                env = self.env_sampler(self.rng)
                envs.append(env)
                segments.append(
                    collect_segment(
                        env, self.policy, self.rng, max_steps=config.truncate_horizon
                    )
                )
            return {"envs": envs, "segments": segments, "pool": None}
        envs = [self.env_sampler(self.rng) for _ in range(config.segments_per_iteration)]
        streams = split_rng(self.rng, len(envs))
        batches = _poolable_batches(envs)
        pool = self._async_prefetch_pool(envs, batches)
        if pool is not None:
            pool.collect_rollouts_async(streams, max_steps=config.truncate_horizon)
            return {"envs": envs, "segments": None, "pool": pool}
        return {
            "envs": envs,
            "segments": self._collect_batches(envs, streams, batches),
            "pool": None,
        }

    def _async_prefetch_pool(
        self,
        envs: Sequence[MultiUserEnv],
        batches: List[List[Tuple[int, MultiUserEnv]]],
    ) -> Optional[ShardedVecEnvPool]:
        """The synced sharded pool to dispatch an async collect on, or None.

        Overlap needs the whole iteration to be a single shard_parallel
        round: singleton or multi-round batches would serialise against
        the in-flight collect anyway, and the step-server / in-process
        modes act in the parent. The policy replica is broadcast here —
        the *pre-update* weights, which is exactly the stale-by-one
        contract.
        """
        config = self.config
        if len(batches) != 1 or len(batches[0]) != len(envs) or len(envs) <= 1:
            return None
        if config.resolved_rollout_mode() != "shard_parallel" or self._replica_unpicklable:
            return None
        workers = self._effective_workers(len(envs))
        if workers <= 1:
            return None
        pool = self._sharded_pool(envs, workers)
        try:
            pool.sync_policy(self.policy)
        except (TypeError, AttributeError, pickle.PicklingError) as error:
            if pool.replica_version != 0 or config.rollout_mode is not None:
                raise
            warnings.warn(
                f"policy cannot be shipped to rollout workers ({error!r}); "
                "degrading to step-server sharding (rollout_mode='sharded') "
                "for the rest of this run",
                RuntimeWarning,
                stacklevel=3,
            )
            self._replica_unpicklable = True
            return None
        return pool

    def _wait_collect(self, pending: Dict[str, Any]) -> None:
        """Resolve an in-flight pending collect to finished segments, in place.

        Commits exactly the side effects the synchronous path would
        have: the workers' advanced env state is synced back into the
        parent's objects (when the sampler shares them) and the pool's
        owner-RNG/journal bookkeeping is applied by
        ``collect_rollouts_wait`` itself.
        """
        pool = pending["pool"]
        if pool is None:
            return
        segments = pool.collect_rollouts_wait()
        if self._sync_worker_envs:
            for mine, theirs in zip(pending["envs"], pool.fetch_member_envs()):
                vars(mine).update(vars(theirs))
        pending["segments"] = segments
        pending["pool"] = None

    def _finish_collect(
        self, pending: Dict[str, Any]
    ) -> Tuple[RolloutBuffer, List[float]]:
        """Wait on a pending collect and post-process it into a buffer."""
        self._wait_collect(pending)
        buffer = RolloutBuffer()
        raw_rewards: List[float] = []
        for env, segment in zip(pending["envs"], pending["segments"]):
            raw_rewards.append(float(segment.rewards.sum(axis=0).mean()))
            self.post_process_segment(segment, env)
            buffer.add(segment)
        return buffer, raw_rewards

    def drain_prefetch(self) -> Optional[Dict[str, Any]]:
        """Resolve an in-flight prefetch to finished segments, in place.

        Called before a checkpoint is taken: waiting now (instead of at
        the next ``train_iteration``) commits exactly the side effects
        the next consume would have committed — worker env state synced
        back, pool RNG streams advanced — so the snapshot captures a
        state bit-identical to the unbroken run's, and the stashed
        segments let the resumed trainer consume the collect without
        re-running it (post-processing still happens at consume time).
        Returns the drained prefetch, or None when nothing is pending.
        A failed wait discards the prefetch before propagating.
        """
        pending = self._prefetch
        if pending is None:
            return None
        try:
            self._wait_collect(pending)
        except BaseException:
            self._prefetch = None
            raise
        return pending

    def _train_iteration_pipelined(self) -> Dict[str, float]:
        """One pipelined iteration: consume prefetch N, launch N+1, update N.

        The buffer consumed here was collected against the policy as it
        stood *before* the previous iteration's update — staleness
        exactly one iteration (zero only at iteration 0, when the
        collect is fresh). The next iteration's collection is dispatched
        before this iteration's update, so the workers roll while the
        parent learns. ``collect_lag`` in the returned metrics records
        how stale the consumed buffer was (0.0 fresh / 1.0 prefetched).
        """
        config = self.config
        pending, self._prefetch = self._prefetch, None
        lag = 1.0
        if pending is None:
            lag = 0.0
            pending = self._begin_collect()
        with self._phase_timer("collect"):
            buffer, raw_rewards = self._finish_collect(pending)
        with self._phase_timer("collect_dispatch"):
            self._prefetch = self._begin_collect()
        self._m_collect_lag.set(lag)
        buffer.finalize(
            config.ppo.gamma,
            config.ppo.gae_lambda,
            bootstrap_last=config.ppo.bootstrap_truncated,
        )
        with self._phase_timer("update"):
            stats = self.ppo.update(buffer)
        with self._phase_timer("sadae"):
            self.after_update()
        metrics = {
            "reward": float(np.mean(raw_rewards)),
            "shaped_reward": buffer.mean_reward(),
            "collect_lag": lag,
            **stats,
        }
        return self._finish_iteration(metrics)

    def train_iteration(self) -> Dict[str, float]:
        config = self.config
        if config.resolved_determinism() == "pipelined":
            return self._train_iteration_pipelined()
        with self._phase_timer("collect"):
            buffer, raw_rewards = self.collect()
        self._m_collect_lag.set(0.0)
        buffer.finalize(
            config.ppo.gamma,
            config.ppo.gae_lambda,
            bootstrap_last=config.ppo.bootstrap_truncated,
        )
        with self._phase_timer("update"):
            stats = self.ppo.update(buffer)
        with self._phase_timer("sadae"):
            self.after_update()
        metrics = {
            "reward": float(np.mean(raw_rewards)),
            "shaped_reward": buffer.mean_reward(),
            **stats,
        }
        return self._finish_iteration(metrics)

    def train(self, iterations: int) -> MetricLogger:
        for _ in range(iterations):
            self.train_iteration()
        return self.logger

    # Run checkpoint / resume --------------------------------------------
    @property
    def iteration(self) -> int:
        """Completed training iterations (the resume point)."""
        return self._iteration

    def checkpoint_extra_state(self) -> Dict[str, np.ndarray]:
        """Trainer-specific continuation state for run checkpoints.

        Subclasses whose sampler or learning steps carry state across
        iterations (shared env objects, replay windows, counters)
        override this — and :meth:`load_checkpoint_extra_state` — so a
        resumed run continues the unbroken trajectory. Values must be
        numpy arrays (:func:`repro.core.checkpoint.pickle_to_array`
        wraps arbitrary objects).
        """
        return {}

    def load_checkpoint_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`checkpoint_extra_state` (no-op by default)."""

    def save_checkpoint(self, path) -> None:
        """Atomically snapshot this trainer to ``path`` (npz + CRC32)."""
        from .checkpoint import save_checkpoint

        save_checkpoint(path, self)

    def load_checkpoint(self, path) -> int:
        """Restore a snapshot saved by :meth:`save_checkpoint`.

        The trainer must be freshly built from the same config; returns
        the completed-iteration count to continue from.
        """
        from .checkpoint import load_checkpoint

        return load_checkpoint(path, self)


def env_population_extra_state(
    envs: Sequence[MultiUserEnv],
    recent_sets: Sequence[Tuple[np.ndarray, Optional[np.ndarray]]],
) -> Dict[str, np.ndarray]:
    """Checkpoint payload for trainers over a shared env population.

    Captures the env objects whole (their internal RNG generators and
    episode state travel inside the pickle) plus the SADAE replay
    window. Shared by the LTS and scenario trainers.
    """
    from .checkpoint import pickle_to_array

    return {
        "train_envs": pickle_to_array(list(envs)),
        "recent_sets": pickle_to_array(list(recent_sets)),
    }


def load_env_population_extra_state(
    envs: Sequence[MultiUserEnv], state: Dict[str, np.ndarray]
) -> List[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Restore :func:`env_population_extra_state` **into** ``envs``.

    The checkpointed env states are written into the existing objects
    (``vars`` update) rather than replacing them — the sampler closure
    and any cached pool hold references to these exact objects. Returns
    the restored replay window.
    """
    from .checkpoint import unpickle_array

    saved = unpickle_array(state["train_envs"])
    if len(saved) != len(envs):
        raise ValueError(
            f"checkpoint has {len(saved)} training envs, trainer has "
            f"{len(envs)} — config mismatch"
        )
    for mine, theirs in zip(envs, saved):
        vars(mine).update(vars(theirs))
    return unpickle_array(state["recent_sets"])


class Sim2RecLTSTrainer(PolicyTrainer):
    """Algorithm 1 on the LTS task sets (predefined parameter space Ω).

    The LTS simulators are exact environment variants, so the data-driven
    error countermeasures stay off; the trainer adds SADAE ELBO updates on
    the state sets observed during rollouts and supports the Fig. 7
    "unlimited-user" mode that resamples per-user gaps each draw.
    """

    def __init__(
        self,
        policy: Sim2RecPolicy,
        task: LTSTask,
        config: Sim2RecConfig,
        resample_users: bool = False,
        logger: Optional[MetricLogger] = None,
    ):
        self.task = task
        self.resample_users = resample_users
        self._train_envs = task.make_train_envs()
        self._recent_sets: List[Tuple[np.ndarray, Optional[np.ndarray]]] = []

        def sampler(rng: np.random.Generator) -> MultiUserEnv:
            env = self._train_envs[int(rng.integers(0, len(self._train_envs)))]
            if self.resample_users:
                env.resample_user_gaps()
            return env

        super().__init__(policy, sampler, config, logger)
        self.sim2rec_policy = policy
        # The unlimited-user mode resamples gaps on *shared* env objects at
        # sample time; batching samples up front would let a later resample
        # overwrite an earlier one before its rollout runs. Keep the
        # sequential sample→rollout interleaving in that mode.
        self._sequential_collect = resample_users

    def pretrain_sadae(self, epochs: Optional[int] = None, users_per_set: int = 200) -> List[float]:
        """Fit q_κ/p_θ on state sets drawn from the training simulators."""
        sets = collect_lts_state_sets(
            self.task, users_per_set=users_per_set, rng=self.rng
        )
        with self._phase_timer("sadae_pretrain"):
            return train_sadae(
                self.sim2rec_policy.sadae,
                sets,
                epochs=epochs or self.config.sadae_pretrain_epochs,
                rng=self.rng,
                batched=self.config.batched_sadae,
            )

    def post_process_segment(self, segment: RolloutSegment, env: MultiUserEnv) -> None:
        for t in range(0, segment.horizon, max(segment.horizon // 4, 1)):
            self._recent_sets.append((segment.states[t], None))
        self._recent_sets = self._recent_sets[-64:]

    def checkpoint_extra_state(self) -> Dict[str, np.ndarray]:
        return env_population_extra_state(self._train_envs, self._recent_sets)

    def load_checkpoint_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        self._recent_sets = load_env_population_extra_state(self._train_envs, state)

    def after_update(self) -> None:
        if not self._recent_sets or self.config.sadae_updates_per_iteration <= 0:
            return
        count = min(self.config.sadae_sets_per_update, len(self._recent_sets))
        indices = self.rng.choice(len(self._recent_sets), size=count, replace=False)
        sets = [self._recent_sets[i] for i in indices]
        train_sadae(
            self.sim2rec_policy.sadae,
            sets,
            epochs=self.config.sadae_updates_per_iteration,
            rng=self.rng,
            fit_normalizer=False,
            batched=self.config.batched_sadae,
        )


def collect_lts_state_sets(
    task: LTSTask,
    users_per_set: int = 200,
    steps_per_env: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> List[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Build the SADAE training corpus: state sets from every LTS simulator.

    Mirrors the paper's setup ("we draw 1000 users for each simulator ...
    to the constructed state dataset D"): each simulator contributes its
    observed group state sets under random actions.
    """
    rng = rng or make_rng(0)
    sets: List[Tuple[np.ndarray, Optional[np.ndarray]]] = []
    for index in range(task.num_simulators):
        env = task.make_train_env(index)
        if users_per_set != env.num_users:
            from ..envs.lts import LTSConfig, LTSEnv

            env = LTSEnv(
                LTSConfig(
                    num_users=users_per_set,
                    horizon=steps_per_env,
                    omega_g=float(task.train_omega_gs[index]),
                    omega_u_range=task.beta,
                    observation_noise_std=task.observation_noise_std,
                    seed=task.seed + 3000 + index,
                )
            )
        states = env.reset()
        sets.append((states.copy(), None))
        for _ in range(steps_per_env - 1):
            actions = rng.random((env.num_users, 1))
            states, _, _, _ = env.step(actions)
            sets.append((states.copy(), None))
    return sets


class Sim2RecDPRTrainer(PolicyTrainer):
    """Algorithm 1 on the DPR task: learned simulator ensemble + logged data."""

    def __init__(
        self,
        policy: Sim2RecPolicy,
        ensemble: SimulatorEnsemble,
        dataset: TrajectoryDataset,
        config: Sim2RecConfig,
        logger: Optional[MetricLogger] = None,
    ):
        self.ensemble = ensemble
        self.dataset = dataset
        self._filtered_logs = {}
        self._trend_results = {}
        for group in dataset.groups:
            if config.use_trend_filter:
                result = compute_trend_filter(ensemble, group)
                self._trend_results[group.group_id] = result
                self._filtered_logs[group.group_id] = filter_group_log(
                    group, result.keep_mask
                )
            else:
                self._filtered_logs[group.group_id] = group
        group_ids = list(self._filtered_logs)
        # Instance state (not a closure cell) so run checkpoints can
        # capture it: resumed runs draw the same env seeds the unbroken
        # run would have.
        self._env_seed_counter = 0

        def sampler(rng: np.random.Generator) -> MultiUserEnv:
            member = ensemble.sample_member(rng)           # M_ω ~ p(Ω)
            gid = group_ids[int(rng.integers(0, len(group_ids)))]  # g ~ p(g)
            self._env_seed_counter += 1
            return SimulatedDPREnv(
                member,
                self._filtered_logs[gid],
                truncate_horizon=config.truncate_horizon or 5,
                ensemble=ensemble if config.use_uncertainty_penalty else None,
                seed=config.seed + 40_000 + self._env_seed_counter,
            )

        super().__init__(policy, sampler, config, logger)
        self.sim2rec_policy = policy
        self._sadae_sets = dataset.state_action_sets()
        # The sampler builds a fresh SimulatedDPREnv per draw — nothing
        # outlives its iteration, so skip the worker-state sync transfer.
        self._sync_worker_envs = False

    @property
    def trend_results(self):
        """Per-group intervention-test outcomes (for diagnostics/benches)."""
        return self._trend_results

    def checkpoint_extra_state(self) -> Dict[str, np.ndarray]:
        return {
            "env_seed_counter": np.array([self._env_seed_counter], dtype=np.int64)
        }

    def load_checkpoint_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        self._env_seed_counter = int(
            np.asarray(state["env_seed_counter"]).ravel()[0]
        )

    def pretrain_sadae(self, epochs: Optional[int] = None) -> List[float]:
        with self._phase_timer("sadae_pretrain"):
            return train_sadae(
                self.sim2rec_policy.sadae,
                self._sadae_sets,
                epochs=epochs or self.config.sadae_pretrain_epochs,
                rng=self.rng,
                batched=self.config.batched_sadae,
            )

    def post_process_segment(self, segment: RolloutSegment, env: MultiUserEnv) -> None:
        config = self.config
        if config.use_uncertainty_penalty:
            apply_uncertainty_penalty(
                segment,
                self.ensemble,
                config.uncertainty_alpha,
                estimator=config.uncertainty_estimator,
            )
        if config.use_exec_filter and isinstance(env, SimulatedDPREnv):
            apply_exec_filter(
                segment,
                env.exec_low,
                env.exec_high,
                r_min=config.exec_r_min,
                gamma=config.ppo.gamma,
                tolerance=config.exec_tolerance,
                action_clip=(0.0, 1.0),
            )

    def after_update(self) -> None:
        if self.config.sadae_updates_per_iteration <= 0:
            return
        count = min(self.config.sadae_sets_per_update, len(self._sadae_sets))
        indices = self.rng.choice(len(self._sadae_sets), size=count, replace=False)
        sets = [self._sadae_sets[i] for i in indices]
        train_sadae(
            self.sim2rec_policy.sadae,
            sets,
            epochs=self.config.sadae_updates_per_iteration,
            rng=self.rng,
            fit_normalizer=False,
            batched=self.config.batched_sadae,
        )


def build_sim2rec_policy(
    state_dim: int,
    action_dim: int,
    config: Sim2RecConfig,
    rng: Optional[np.random.Generator] = None,
) -> Sim2RecPolicy:
    """Assemble the SADAE + extractor + context-aware policy from a config."""
    from .sadae import SADAE

    rng = rng or make_rng(config.seed)
    sadae = SADAE(state_dim, action_dim, config.sadae)
    return Sim2RecPolicy(
        state_dim,
        action_dim,
        sadae,
        rng,
        fc_sizes=config.fc_sizes,
        lstm_hidden=config.lstm_hidden,
        head_hidden=config.head_hidden,
        init_log_std=config.init_log_std,
    )

"""Configuration bundles encoding the paper's hyper-parameters (Table II).

``lts_paper_config`` / ``dpr_paper_config`` reproduce Table II verbatim.
They are sized for the paper's 2·10⁹-step budget; the ``*_small_config``
variants keep the same structure at laptop scale and are what the tests,
examples and benches use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..rl.parity import ROLLOUT_MODES
from ..rl.ppo import PPOConfig
from ..rl.workers import FaultPolicy
from .sadae import SADAEConfig

# Re-exported here for config consumers: the rollout collection modes
# accepted by Sim2RecConfig.rollout_mode. All four are contractually
# bit-identical for matched per-env noise streams (repro.rl.parity owns
# the canonical tuple and the harness that proves it); they differ only
# in throughput.
__all__ = [
    "DETERMINISM_MODES",
    "ROLLOUT_MODES",
    "Sim2RecConfig",
    "dpr_paper_config",
    "dpr_small_config",
    "lts_paper_config",
    "lts_small_config",
    "scenario_small_config",
]

# Collect/update scheduling contracts accepted by
# Sim2RecConfig.determinism. "strict" is the barrier schedule the parity
# grid pins bit-for-bit; "pipelined" overlaps iteration N's update with
# iteration N+1's collection (stale-by-one policy, own seeded
# reproducibility tier — see docs/performance.md).
DETERMINISM_MODES = ("strict", "pipelined")


@dataclass
class Sim2RecConfig:
    """Everything needed to assemble and train a Sim2Rec agent."""

    # --- context-aware policy and extractor φ -------------------------
    fc_sizes: Tuple[int, ...] = (64, 32)        # layers f between q_κ and φ
    lstm_hidden: int = 64                        # units of LSTM in φ
    head_hidden: Tuple[int, ...] = (128, 64)     # context-aware layer π
    init_log_std: float = -1.0

    # --- SADAE ---------------------------------------------------------
    sadae: SADAEConfig = field(default_factory=SADAEConfig)
    sadae_pretrain_epochs: int = 30
    sadae_updates_per_iteration: int = 1
    sadae_sets_per_update: int = 8
    # Evaluate each SADAE step's equal-cardinality sets through one
    # stacked elbo_batch forward (bit-identical losses for
    # equal-cardinality corpora; see repro.core.sadae.train_sadae).
    batched_sadae: bool = True

    # --- PPO (Eq. 4) -----------------------------------------------------
    ppo: PPOConfig = field(default_factory=PPOConfig)
    segments_per_iteration: int = 2
    # How each iteration's segments are collected; one of ROLLOUT_MODES
    # ("sequential" / "vectorized" / "sharded" / "shard_parallel") or
    # None to derive the mode from the two legacy knobs below:
    #   vectorized_rollouts=False            -> "sequential"
    #   rollout_workers <= 1                 -> "vectorized"
    #   rollout_workers  > 1                 -> "shard_parallel"
    # "sharded" (workers step envs, the parent runs the policy) remains
    # available explicitly; "shard_parallel" additionally runs a policy
    # replica inside every worker so the whole act->step->record loop
    # parallelises. All modes are bit-identical for a fixed config seed
    # up to the sequential mode's noise-stream layout (the pooled modes
    # spawn one child stream per env; "sequential" threads one stream
    # through every env in sampling order).
    rollout_mode: Optional[str] = None
    # Legacy knob: False forces the sequential path when rollout_mode is
    # None. Prefer rollout_mode="sequential".
    vectorized_rollouts: bool = True
    # Worker-process count for the sharded modes
    # (repro.rl.workers.ShardedVecEnvPool); bit-identical to the
    # in-process pool for any value. <= 1 = in-process; auto-degrades to
    # in-process when a rollout batch has a single env or the platform
    # offers no multiprocessing start method. Worker processes are
    # reused across iterations.
    rollout_workers: int = 1
    # Worker supervision for the sharded modes: a
    # repro.rl.workers.FaultPolicy turns on per-op deadlines, automatic
    # respawn with bit-identical crash recovery, and graceful
    # degradation to in-process collection when the restart budget runs
    # out. None (the default) keeps the legacy fail-fast contract: any
    # worker failure closes the pool and raises.
    fault_policy: Optional[FaultPolicy] = None
    # Collect/update scheduling contract. "strict" (the default) keeps
    # the barrier semantics every bit-parity suite pins: collect
    # iteration N, then update on it, in one thread of control.
    # "pipelined" overlaps them: train_iteration launches iteration
    # N+1's collection (env sampling + async dispatch against the
    # last-broadcast, stale-by-one policy replica) before running the
    # PPO update on iteration N's buffer, so rollout workers and the
    # learner run concurrently. Pipelined runs are seeded and
    # reproducible run-to-run (and across worker counts — the same
    # prefetch schedule executes synchronously when no worker pool is
    # eligible), but they are a *different* trajectory from strict:
    # rollouts use the pre-update policy, one iteration stale.
    determinism: str = "strict"

    # --- run checkpoint / resume ----------------------------------------
    # Every checkpoint_every completed iterations (0 = off) the trainer
    # atomically snapshots policy + optimiser + RNG streams + aux state
    # to checkpoint_path (repro.core.checkpoint); a fresh trainer built
    # from the same config resumes from it on the unbroken run's exact
    # trajectory.
    checkpoint_every: int = 0
    checkpoint_path: Optional[str] = None

    # --- observability ---------------------------------------------------
    # When set, the trainer appends one CRC32-framed JSONL record per
    # completed iteration — the full metrics-registry snapshot plus the
    # logged metrics dict — to this path (repro.obs.JSONLMetricsSink).
    # Purely additive: instrumentation never feeds back into training
    # state, so runs with and without a sink are bit-identical.
    metrics_path: Optional[str] = None

    # --- scenario (registry-driven environment family) ------------------
    # A registered-family config dict resolved by repro.scenarios, e.g.
    # {"family": "slate", "num_envs": 48, "num_users": 10}. Consumed by
    # repro.scenarios.trainer_from_config and the
    # `python -m repro.scenarios train` CLI; the Sim2Rec*Trainer classes
    # ignore it (their environments are passed explicitly).
    scenario: Optional[Dict[str, Any]] = None

    # --- simulator-error countermeasures (Sec. IV-C) --------------------
    truncate_horizon: Optional[int] = None   # T_c; None = full episodes
    uncertainty_alpha: float = 0.01          # α, coefficient of the U penalty
    uncertainty_estimator: str = "mean_deviation"  # see repro.sim.uncertainty
    use_uncertainty_penalty: bool = True     # off → the Sim2Rec-PE ablation
    use_trend_filter: bool = True            # off (with exec) → Sim2Rec-EE
    use_exec_filter: bool = True
    exec_r_min: float = 0.0                  # R_min of the task
    exec_tolerance: float = 0.02

    seed: int = 0

    def resolved_determinism(self) -> str:
        """The effective scheduling contract (see :attr:`determinism`)."""
        if self.determinism not in DETERMINISM_MODES:
            raise ValueError(
                f"determinism {self.determinism!r} not in {DETERMINISM_MODES}"
            )
        return self.determinism

    def resolved_rollout_mode(self) -> str:
        """The effective collection mode (see :attr:`rollout_mode`)."""
        mode = self.rollout_mode
        if mode is None:
            if not self.vectorized_rollouts:
                return "sequential"
            return "shard_parallel" if self.rollout_workers > 1 else "vectorized"
        if mode not in ROLLOUT_MODES:
            raise ValueError(
                f"rollout_mode {mode!r} not in {ROLLOUT_MODES} (or None for auto)"
            )
        return mode

    def ablate_prediction_error_handling(self) -> "Sim2RecConfig":
        """Sim2Rec-PE: drop the uncertainty penalty and the T_c truncation."""
        return replace(
            self,
            use_uncertainty_penalty=False,
            truncate_horizon=None,
            ppo=replace(self.ppo, bootstrap_truncated=False),
        )

    def ablate_extrapolation_error_handling(self) -> "Sim2RecConfig":
        """Sim2Rec-EE: drop both F_trend and F_exec."""
        return replace(self, use_trend_filter=False, use_exec_filter=False)


def lts_paper_config() -> Sim2RecConfig:
    """Table II, LTS column (paper scale)."""
    return Sim2RecConfig(
        fc_sizes=(128, 128, 128, 32),
        lstm_hidden=64,
        head_hidden=(128, 64),
        sadae=SADAEConfig(
            latent_dim=5,
            encoder_hidden=(512, 512),
            decoder_hidden=(512, 512),
            learning_rate=2e-5,
            weight_decay=0.1,
            state_only=True,
        ),
        ppo=PPOConfig(
            learning_rate=1e-4,
            final_learning_rate=1e-6,
            gamma=0.99,
            update_epochs=4,
            minibatches_per_segment=4,
        ),
        # The LTS simulator set is exact (configurable parameters), so the
        # data-driven error countermeasures are off, as in the paper.
        use_uncertainty_penalty=False,
        use_trend_filter=False,
        use_exec_filter=False,
    )


def dpr_paper_config() -> Sim2RecConfig:
    """Table II, DPR column (paper scale)."""
    return Sim2RecConfig(
        fc_sizes=(512, 512, 256),
        lstm_hidden=256,
        head_hidden=(512, 256),
        sadae=SADAEConfig(
            latent_dim=200,
            encoder_hidden=(512, 512),
            decoder_hidden=(512, 512),
            learning_rate=1e-6,
            weight_decay=0.001,
            state_only=False,
        ),
        ppo=PPOConfig(
            learning_rate=1e-4,
            final_learning_rate=1e-6,
            gamma=0.9,
            update_epochs=4,
            minibatches_per_segment=4,
            bootstrap_truncated=True,
        ),
        truncate_horizon=5,
        uncertainty_alpha=0.01,
    )


def lts_small_config(seed: int = 0) -> Sim2RecConfig:
    """Laptop-scale LTS preset (same structure, smaller nets / faster LR)."""
    return Sim2RecConfig(
        fc_sizes=(32, 16),
        lstm_hidden=32,
        head_hidden=(64, 32),
        sadae=SADAEConfig(
            latent_dim=4,
            encoder_hidden=(64, 64),
            decoder_hidden=(64, 64),
            learning_rate=1e-3,
            weight_decay=1e-3,
            state_only=True,
            seed=seed,
        ),
        sadae_pretrain_epochs=40,
        ppo=PPOConfig(
            learning_rate=1e-3,
            gamma=0.99,
            update_epochs=3,
            minibatches_per_segment=2,
        ),
        use_uncertainty_penalty=False,
        use_trend_filter=False,
        use_exec_filter=False,
        seed=seed,
    )


def scenario_small_config(seed: int = 0) -> Sim2RecConfig:
    """Laptop-scale preset for arbitrary registered scenarios.

    Family-agnostic: the full state-action SADAE form (``state_only=
    False``) identifies any world's group parameters, and the error
    countermeasures stay off because scenario simulators are exact
    environment variants (as in the LTS tasks). Pair it with
    ``config.scenario = {...}`` and
    :func:`repro.scenarios.trainer_from_config`.
    """
    return Sim2RecConfig(
        fc_sizes=(32, 16),
        lstm_hidden=32,
        head_hidden=(64, 32),
        sadae=SADAEConfig(
            latent_dim=4,
            encoder_hidden=(64, 64),
            decoder_hidden=(64, 64),
            learning_rate=1e-3,
            weight_decay=1e-3,
            state_only=False,
            seed=seed,
        ),
        sadae_pretrain_epochs=20,
        ppo=PPOConfig(
            learning_rate=1e-3,
            gamma=0.99,
            update_epochs=3,
            minibatches_per_segment=2,
        ),
        use_uncertainty_penalty=False,
        use_trend_filter=False,
        use_exec_filter=False,
        seed=seed,
    )


def dpr_small_config(seed: int = 0) -> Sim2RecConfig:
    """Laptop-scale DPR preset."""
    return Sim2RecConfig(
        fc_sizes=(32, 16),
        lstm_hidden=32,
        head_hidden=(64, 32),
        sadae=SADAEConfig(
            latent_dim=8,
            encoder_hidden=(64, 64),
            decoder_hidden=(64, 64),
            learning_rate=1e-3,
            weight_decay=1e-4,
            state_only=False,
            seed=seed,
        ),
        sadae_pretrain_epochs=20,
        ppo=PPOConfig(
            learning_rate=1e-3,
            gamma=0.9,
            update_epochs=3,
            minibatches_per_segment=2,
            bootstrap_truncated=True,
        ),
        truncate_horizon=5,
        uncertainty_alpha=0.01,
        seed=seed,
    )

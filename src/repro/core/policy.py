"""The Sim2Rec context-aware policy with its hierarchical extractor (Fig. 2).

Per time-step, for every user i of the group:

1. the group's state-action set ``X_t = (S_t, A_{t-1})`` is embedded by
   SADAE: ``υ_t ~ q_κ(υ | X_t)``;
2. υ_t passes through fully-connected layers f (Table II) and is
   concatenated with the user's ``[a^i_{t-1}, s^i_t]`` to form x^i_t;
3. the LSTM extractor advances ``z^i_t = φ(z^i_{t-1}, x^i_t)``;
4. the context-aware head samples ``a^i_t ~ π(a | s^i_t, z^i_t)``.

During PPO updates the whole pipeline — including q_κ — is recomputed with
gradients (Eq. 4), so the extractor learns representations that the policy
actually needs, exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .. import nn
from ..rl.buffer import RolloutSegment
from ..rl.policies import RecurrentActorCritic
from .sadae import SADAE


class Sim2RecPolicy(RecurrentActorCritic):
    """RecurrentActorCritic + SADAE group context."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        sadae: SADAE,
        rng: np.random.Generator,
        fc_sizes: Tuple[int, ...] = (64, 32),
        lstm_hidden: int = 64,
        head_hidden: Tuple[int, ...] = (128, 64),
        init_log_std: float = -0.5,
        sample_embedding: bool = True,
    ):
        context_dim = fc_sizes[-1]
        super().__init__(
            state_dim,
            action_dim,
            rng,
            lstm_hidden=lstm_hidden,
            head_hidden=head_hidden,
            context_dim=context_dim,
            init_log_std=init_log_std,
        )
        self.sadae = sadae
        # The extra fully-connected layers f between q_κ and φ (Table II).
        self.context_mlp = nn.MLP(
            [sadae.config.latent_dim, *fc_sizes], rng, activation="tanh"
        )
        self.sample_embedding = sample_embedding
        self._eval_rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # replica synchronisation
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict[str, np.ndarray]:
        """SADAE normaliser statistics ride along with the param broadcast.

        The input/state/action standardisation arrays are plain buffers
        (not Parameters), yet :meth:`_rollout_context` reads them on
        every act — a shard-parallel replica that missed them would
        embed with stale statistics and silently diverge bit-wise.
        """
        return {f"sadae_norm.{k}": v for k, v in self.sadae.normalizer_state().items()}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        prefix = "sadae_norm."
        self.sadae.load_normalizer_state(
            {k[len(prefix):]: v for k, v in state.items() if k.startswith(prefix)}
        )

    # ------------------------------------------------------------------
    # context hooks
    # ------------------------------------------------------------------
    def _rollout_context(self, states: np.ndarray, prev_actions: np.ndarray) -> np.ndarray:
        # υ_t is a *group-level* embedding: in a vectorized rollout the
        # stacked batch holds several groups (one block per env), so the
        # SADAE posterior product must run per block — mixing users across
        # cities would change every number.
        #
        # Shard-parallel ordering note: rollout-time υ is the posterior
        # *mean* (`sadae.embed` draws no noise), so computing blocks on
        # different workers cannot reorder any υ-draw stream; the sampled
        # υ path (`_segment_context` with `_eval_rng`) runs only during
        # parent-side PPO evaluation, segment by segment, in order.
        groups = self._rollout_groups or (slice(0, states.shape[0]),)
        context = np.empty((states.shape[0], self.context_dim))
        for block in groups:
            upsilon = self.sadae.embed(
                states[block],
                None if self.sadae.config.state_only else prev_actions[block],
            )
            with nn.no_grad():
                context[block] = self.context_mlp(nn.Tensor(upsilon.reshape(1, -1))).data
        return context

    def _segment_context(self, segment: RolloutSegment) -> nn.Tensor:
        """υ context per step over the full group, with gradients to κ."""
        contexts = []
        rng = self._eval_rng if self.sample_embedding else None
        for t in range(segment.horizon):
            actions = None if self.sadae.config.state_only else segment.prev_actions[t]
            upsilon = self.sadae.embed_tensor(segment.states[t], actions, rng)
            contexts.append(self.context_mlp(upsilon.reshape(1, -1))[0])
        return nn.stack(contexts, axis=0)

    # Note: ``self.sadae`` and ``self.context_mlp`` are module attributes, so
    # ``self.parameters()`` already exposes q_κ and f to the PPO optimiser —
    # the Eq. (4) gradient path updates κ without extra wiring.

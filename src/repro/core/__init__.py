"""The Sim2Rec core: SADAE, context-aware policy, filters, Algorithm 1."""

from .checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_iteration,
    load_checkpoint,
    save_checkpoint,
)
from .config import (
    ROLLOUT_MODES,
    Sim2RecConfig,
    dpr_paper_config,
    dpr_small_config,
    lts_paper_config,
    lts_small_config,
    scenario_small_config,
)
from .filters import (
    TrendFilterResult,
    apply_exec_filter,
    apply_uncertainty_penalty,
    compute_trend_filter,
    filter_group_log,
    intervention_response,
)
from .policy import Sim2RecPolicy
from .sadae import SADAE, SADAEConfig, train_sadae
from .trainer import (
    PolicyTrainer,
    Sim2RecDPRTrainer,
    Sim2RecLTSTrainer,
    build_sim2rec_policy,
    collect_lts_state_sets,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "PolicyTrainer",
    "ROLLOUT_MODES",
    "SADAE",
    "SADAEConfig",
    "Sim2RecConfig",
    "Sim2RecDPRTrainer",
    "Sim2RecLTSTrainer",
    "Sim2RecPolicy",
    "TrendFilterResult",
    "apply_exec_filter",
    "apply_uncertainty_penalty",
    "build_sim2rec_policy",
    "checkpoint_iteration",
    "collect_lts_state_sets",
    "compute_trend_filter",
    "dpr_paper_config",
    "dpr_small_config",
    "filter_group_log",
    "intervention_response",
    "load_checkpoint",
    "lts_paper_config",
    "lts_small_config",
    "save_checkpoint",
    "scenario_small_config",
    "train_sadae",
]

"""Run checkpoint / resume for the training loops.

A checkpoint is one atomic, CRC32-verified ``.npz`` archive
(:func:`repro.nn.save_state` — write-temp-then-rename, so a crash
mid-write can never corrupt the previous checkpoint) holding everything
a :class:`~repro.core.trainer.PolicyTrainer` needs to continue **on the
exact trajectory** an unbroken run would have taken:

- ``policy.*``  — the policy's full replica state (all parameters,
  including the SADAE, plus non-parameter buffers such as the SADAE
  input normaliser) via ``replica_state`` — the same delta-free archive
  the rollout workers receive;
- ``optimizer.*`` / ``schedule.*`` — the PPO Adam accumulators and the
  linear-LR schedule position, so the first post-resume update takes
  the same parameter step;
- ``rng.*`` — the trainer's generator and the policy's evaluation
  generator, pickled *whole*. (A ``bit_generator.state`` dict is not
  enough: ``split_rng`` spawns child streams through the generator's
  ``SeedSequence``, whose spawn counter lives outside that state dict —
  pickling the generator object preserves it, so post-resume rollout
  noise streams match the unbroken run's.)
- ``aux.*``   — trainer-specific continuation state (shared training-env
  objects with their internal RNGs, the SADAE replay window, the DPR env
  seed counter) via the ``checkpoint_extra_state`` hook;
- ``meta.*``  — format version and the completed-iteration counter;
- ``prefetch.*`` — present only when a pipelined trainer
  (``determinism="pipelined"``) had a prefetched collection in flight:
  the drained segments and their sampled envs, consumed (not
  re-collected) by the resumed run. See
  :meth:`~repro.core.trainer.PolicyTrainer.drain_prefetch`.

Loading refuses archives whose checksum, format version or parameter
shapes do not match — a torn or bit-flipped checkpoint fails loudly
(:class:`repro.nn.StateChecksumError`) instead of resuming from garbage.
Enforced by ``tests/core/test_checkpoint.py``: a run that checkpoints,
dies and resumes reproduces the unbroken run's metrics and final
parameters bit for bit, and corrupted checkpoints are rejected.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional

import numpy as np

from ..nn.serialization import load_state, save_state

PathLike = Any

#: Bumped when the archive layout changes incompatibly.
CHECKPOINT_VERSION = 1


def pickle_to_array(obj: Any) -> np.ndarray:
    """Pickle an object into a uint8 array (npz-storable opaque blob)."""
    return np.frombuffer(pickle.dumps(obj), dtype=np.uint8)


def unpickle_array(array: np.ndarray) -> Any:
    """Inverse of :func:`pickle_to_array`."""
    return pickle.loads(np.asarray(array, dtype=np.uint8).tobytes())


def _policy_state(policy) -> Dict[str, np.ndarray]:
    if hasattr(policy, "replica_state"):
        return policy.replica_state()
    return {f"param.{key}": value for key, value in policy.state_dict().items()}


def _load_policy_state(policy, state: Dict[str, np.ndarray]) -> None:
    if hasattr(policy, "load_replica_state"):
        policy.load_replica_state(state)
    else:
        policy.load_state_dict(
            {k[len("param."):]: v for k, v in state.items() if k.startswith("param.")}
        )


def save_checkpoint(path: PathLike, trainer) -> None:
    """Snapshot ``trainer`` (policy, optimiser, RNGs, aux state) to ``path``.

    ``trainer`` is any :class:`~repro.core.trainer.PolicyTrainer`; the
    archive is written atomically, so an existing checkpoint at ``path``
    survives a crash mid-save.

    A pipelined trainer with a prefetch in flight **drains** it first
    (``trainer.drain_prefetch()``): the wait commits the same side
    effects the next iteration's consume would have, so the env / RNG
    state written below is bit-identical to the unbroken run's, and the
    drained segments are stashed under ``prefetch.*`` so the resumed
    trainer consumes them instead of re-collecting. Strict-mode
    checkpoints never carry ``prefetch.*`` keys and are unchanged.
    """
    drained = trainer.drain_prefetch() if hasattr(trainer, "drain_prefetch") else None
    state: Dict[str, np.ndarray] = {
        "meta.version": np.array([CHECKPOINT_VERSION], dtype=np.int64),
        "meta.iteration": np.array([trainer.iteration], dtype=np.int64),
        "rng.trainer": pickle_to_array(trainer.rng),
    }
    for key, value in _policy_state(trainer.policy).items():
        state[f"policy.{key}"] = np.asarray(value)
    for key, value in trainer.ppo.optimizer.state_dict().items():
        state[f"optimizer.{key}"] = np.asarray(value)
    schedule = getattr(trainer.ppo, "_schedule", None)
    if schedule is not None:
        for key, value in schedule.state_dict().items():
            state[f"schedule.{key}"] = np.asarray(value)
    eval_rng = getattr(trainer.policy, "_eval_rng", None)
    if eval_rng is not None:
        state["rng.eval"] = pickle_to_array(eval_rng)
    for key, value in trainer.checkpoint_extra_state().items():
        state[f"aux.{key}"] = np.asarray(value)
    if drained is not None:
        state["prefetch.envs"] = pickle_to_array(drained["envs"])
        state["prefetch.segments"] = pickle_to_array(drained["segments"])
    save_state(path, state)


def load_checkpoint(path: PathLike, trainer) -> int:
    """Restore ``trainer`` from a checkpoint; returns the iteration count.

    The trainer must be *freshly constructed from the same config* (same
    policy architecture, simulator set and seed) — the checkpoint
    overwrites its parameters, optimiser accumulators, RNG streams and
    aux state in place, after which ``train_iteration`` continues the
    unbroken run's trajectory bit for bit. Raises
    :class:`~repro.nn.StateChecksumError` on a corrupt archive,
    ``ValueError`` on a version or shape mismatch, and ``KeyError`` on
    missing entries.
    """
    state = load_state(path)
    version = int(np.asarray(state["meta.version"]).ravel()[0])
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path} has format version {version}, this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    iteration = int(np.asarray(state["meta.iteration"]).ravel()[0])

    def prefixed(prefix: str) -> Dict[str, np.ndarray]:
        return {
            key[len(prefix):]: value
            for key, value in state.items()
            if key.startswith(prefix)
        }

    _load_policy_state(trainer.policy, prefixed("policy."))
    trainer.ppo.optimizer.load_state_dict(prefixed("optimizer."))
    schedule = getattr(trainer.ppo, "_schedule", None)
    schedule_state = prefixed("schedule.")
    if schedule is not None:
        if not schedule_state:
            raise KeyError(
                "checkpoint has no schedule state but the trainer's PPO uses "
                "an LR schedule — config mismatch"
            )
        schedule.load_state_dict(schedule_state)
    trainer.rng = unpickle_array(state["rng.trainer"])
    if "rng.eval" in state:
        trainer.policy._eval_rng = unpickle_array(state["rng.eval"])
    trainer.load_checkpoint_extra_state(prefixed("aux."))
    if "prefetch.segments" in state:
        # The drained prefetch resumes exactly where the unbroken run's
        # consume would pick it up: finished segments, no pool attached.
        trainer._prefetch = {
            "envs": unpickle_array(state["prefetch.envs"]),
            "segments": unpickle_array(state["prefetch.segments"]),
            "pool": None,
        }
    trainer._iteration = iteration
    return iteration


def checkpoint_iteration(path: PathLike) -> Optional[int]:
    """Peek a checkpoint's completed-iteration counter (None if unreadable)."""
    try:
        state = load_state(path)
        return int(np.asarray(state["meta.iteration"]).ravel()[0])
    except (OSError, KeyError, ValueError):
        return None

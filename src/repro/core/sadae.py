"""SADAE — the State-Action Distributional variational AutoEncoder.

Sec. IV-B of the paper: a group's state-action set
``X_t^g = {(s_i, a_{i,t-1})}_{i=1..N}`` is embedded into a latent vector υ
that summarises the *distribution* the set was drawn from. Generative story
(Fig. 1): υ ~ p(υ); ψ ~ p_θ(ψ | υ); each (s, a) ~ p_ψ(s, a) i.i.d.

Inference uses the factorised posterior of Eq. (6):

    q_κ(υ | X) = Π_i q_κ(υ | s_i, a_i)

— a product of per-sample Gaussian factors with the closed form of
:func:`repro.nn.product_of_gaussians` [52]. Training maximises the
tractable ELBO of Theorem 4.1:

    E_q [ Σ_i log p_θ(s_i | υ) + log p_θ(a_i | υ, s_i) ] − KL(q(υ|X) ‖ p(υ))

with p(υ) = N(0, I), Gaussian decoders, and the reparameterisation trick.

In the LTS experiments the group information lives in the states only, so
``state_only=True`` drops the action factor (the paper reconstructs the
state distribution there); DPR uses the full state-action form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..utils.seeding import make_rng

StateActionSet = Tuple[np.ndarray, np.ndarray]


@dataclass
class SADAEConfig:
    """SADAE hyper-parameters (paper values in Table II)."""

    latent_dim: int = 8
    encoder_hidden: Tuple[int, ...] = (64, 64)
    decoder_hidden: Tuple[int, ...] = (64, 64)
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    state_only: bool = False
    seed: Optional[int] = None


class SADAE(nn.Module):
    """Encoder q_κ(υ | X) and decoders p_θ(ψ_s | υ), p_θ(ψ_a | υ, s)."""

    def __init__(self, state_dim: int, action_dim: int, config: SADAEConfig):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.config = config
        rng = make_rng(config.seed)
        latent = config.latent_dim
        enc_in = state_dim if config.state_only else state_dim + action_dim
        # Encoder emits per-sample Gaussian factor parameters (μ_i, log σ_i).
        self.encoder = nn.MLP(
            [enc_in, *config.encoder_hidden, 2 * latent], rng, activation="tanh"
        )
        # State decoder: υ → parameters ψ_s of the state distribution.
        self.state_decoder = nn.MLP(
            [latent, *config.decoder_hidden, 2 * state_dim], rng, activation="tanh"
        )
        if not config.state_only:
            self.action_decoder = nn.MLP(
                [latent + state_dim, *config.decoder_hidden, 2 * action_dim],
                rng,
                activation="tanh",
            )
        else:
            self.action_decoder = None
        self.input_mean = np.zeros(enc_in)
        self.input_std = np.ones(enc_in)
        self.state_mean = np.zeros(state_dim)
        self.state_std = np.ones(state_dim)
        self.action_mean = np.zeros(action_dim)
        self.action_std = np.ones(action_dim)

    # ------------------------------------------------------------------
    # normalisation
    # ------------------------------------------------------------------
    def fit_normalizer(self, sets: Sequence[StateActionSet]) -> None:
        """Freeze input/target standardisation from a collection of X sets."""
        states = np.concatenate([s for s, _ in sets], axis=0)
        self.state_mean = states.mean(axis=0)
        self.state_std = states.std(axis=0) + 1e-6
        if self.config.state_only:
            self.input_mean, self.input_std = self.state_mean, self.state_std
            return
        actions = np.concatenate([a for _, a in sets], axis=0)
        self.action_mean = actions.mean(axis=0)
        self.action_std = actions.std(axis=0) + 1e-6
        self.input_mean = np.concatenate([self.state_mean, self.action_mean])
        self.input_std = np.concatenate([self.state_std, self.action_std])

    def normalizer_state(self) -> dict:
        """The standardisation statistics (not Parameters, so not covered by
        ``save_module``); persist alongside the weight checkpoint."""
        return {
            "input_mean": self.input_mean.copy(),
            "input_std": self.input_std.copy(),
            "state_mean": self.state_mean.copy(),
            "state_std": self.state_std.copy(),
            "action_mean": self.action_mean.copy(),
            "action_std": self.action_std.copy(),
        }

    def load_normalizer_state(self, state: dict) -> None:
        for key, value in self.normalizer_state().items():
            incoming = np.asarray(state[key], dtype=np.float64)
            if incoming.shape != value.shape:
                raise ValueError(f"normalizer shape mismatch for {key}")
            setattr(self, key, incoming.copy())

    def _encoder_input(self, states: np.ndarray, actions: Optional[np.ndarray]) -> np.ndarray:
        if self.config.state_only:
            raw = np.asarray(states, dtype=np.float64)
        else:
            raw = np.concatenate([states, actions], axis=1)
        return (raw - self.input_mean) / self.input_std

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def posterior(self, states: np.ndarray, actions: Optional[np.ndarray] = None) -> nn.DiagGaussian:
        """q_κ(υ | X): product of per-sample factors (Eq. 6), differentiable."""
        encoded = self.encoder(nn.Tensor(self._encoder_input(states, actions)))
        latent = self.config.latent_dim
        means = encoded[:, :latent]
        log_stds = encoded[:, latent:]
        return nn.product_of_gaussians(means, log_stds, axis=0)

    def embed(self, states: np.ndarray, actions: Optional[np.ndarray] = None) -> np.ndarray:
        """Posterior mean embedding υ (no gradients; used during rollouts)."""
        with nn.no_grad():
            return self.posterior(states, actions).mean.data.copy()

    def embed_tensor(
        self,
        states: np.ndarray,
        actions: Optional[np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> nn.Tensor:
        """Differentiable embedding for the Eq. (4) gradient path.

        With ``rng`` the embedding is a reparameterised sample; without it
        the posterior mean is used (deterministic but still differentiable).
        """
        posterior = self.posterior(states, actions)
        if rng is None:
            return posterior.mean
        return posterior.rsample(rng)

    # ------------------------------------------------------------------
    # learning (Theorem 4.1)
    # ------------------------------------------------------------------
    def elbo(
        self,
        states: np.ndarray,
        actions: Optional[np.ndarray],
        rng: np.random.Generator,
    ) -> nn.Tensor:
        """Per-sample-normalised ELBO of one state-action set X."""
        n = states.shape[0]
        posterior = self.posterior(states, actions)
        upsilon = posterior.rsample(rng)

        decoded_s = self.state_decoder(upsilon.reshape(1, self.config.latent_dim))
        state_dist = nn.DiagGaussian(
            decoded_s[:, : self.state_dim], decoded_s[:, self.state_dim :]
        )
        norm_states = (states - self.state_mean) / self.state_std
        recon = state_dist.log_prob(norm_states).sum()

        if self.action_decoder is not None:
            if actions is None:
                raise ValueError("actions required unless state_only=True")
            latent_tiled = nn.concat([upsilon.reshape(1, -1)] * n, axis=0)
            norm_state_t = nn.Tensor((states - self.state_mean) / self.state_std)
            decoded_a = self.action_decoder(nn.concat([latent_tiled, norm_state_t], axis=1))
            action_dist = nn.DiagGaussian(
                decoded_a[:, : self.action_dim], decoded_a[:, self.action_dim :]
            )
            norm_actions = (actions - self.action_mean) / self.action_std
            recon = recon + action_dist.log_prob(norm_actions).sum()

        prior = nn.DiagGaussian(
            nn.Tensor(np.zeros(self.config.latent_dim)),
            nn.Tensor(np.zeros(self.config.latent_dim)),
        )
        kl = posterior.kl(prior)
        # Normalising by N keeps the loss scale independent of the set size
        # without changing the optimum (a positive rescaling of the ELBO).
        return (recon - kl) * (1.0 / n)

    def elbo_batch(
        self,
        sets: Sequence[StateActionSet],
        rng: np.random.Generator,
    ) -> List[nn.Tensor]:
        """Per-set ELBOs for equal-cardinality sets via stacked forwards.

        The batched counterpart of :meth:`elbo`: the K sets' inputs are
        stacked to ``[K·N, d]`` so the encoder and both decoders run once
        for the whole batch instead of once per set; only the per-set
        reductions (the Eq. (6) posterior product, the reparameterised
        υ draw, the KL term) stay set-wise. Each returned scalar is
        **bit-identical** to ``elbo(states, actions, rng)`` called set by
        set in order: the MLP forwards are batch-length independent
        row-wise, the υ-noise is drawn per set in set order (so ``rng``
        advances exactly as the sequential loop would), and the per-set
        log-likelihood sums reduce the same contiguous rows.

        All sets must share one cardinality — :func:`train_sadae` groups
        ragged collections by set size before calling this.
        """
        if not sets:
            return []
        n = sets[0][0].shape[0]
        if any(states.shape[0] != n for states, _ in sets):
            raise ValueError("elbo_batch requires equal-cardinality sets")
        if self.action_decoder is not None and any(a is None for _, a in sets):
            raise ValueError("actions required unless state_only=True")
        k = len(sets)
        latent = self.config.latent_dim
        stacked_states = np.concatenate(
            [np.asarray(states, dtype=np.float64) for states, _ in sets], axis=0
        )
        stacked_actions = None
        if not self.config.state_only:
            stacked_actions = np.concatenate(
                [np.asarray(actions, dtype=np.float64) for _, actions in sets], axis=0
            )
        encoded = self.encoder(
            nn.Tensor(self._encoder_input(stacked_states, stacked_actions))
        )  # [K·N, 2·latent]

        posteriors, upsilons = [], []
        for index in range(k):
            rows = encoded[index * n : (index + 1) * n]
            posterior = nn.product_of_gaussians(rows[:, :latent], rows[:, latent:], axis=0)
            posteriors.append(posterior)
            upsilons.append(posterior.rsample(rng))  # one draw per set, in set order

        stacked_upsilon = nn.stack(upsilons, axis=0)  # [K, latent]
        decoded_s = self.state_decoder(stacked_upsilon)  # [K, 2·ds]
        norm_states = (stacked_states - self.state_mean) / self.state_std
        counts = [n] * k
        state_dist = nn.DiagGaussian(
            nn.tile_rows(decoded_s[:, : self.state_dim], counts),
            nn.tile_rows(decoded_s[:, self.state_dim :], counts),
        )
        state_row_logp = state_dist.log_prob(norm_states)  # [K·N]

        action_row_logp = None
        if self.action_decoder is not None:
            latent_tiled = nn.tile_rows(stacked_upsilon, counts)  # [K·N, latent]
            norm_state_t = nn.Tensor(norm_states)
            decoded_a = self.action_decoder(nn.concat([latent_tiled, norm_state_t], axis=1))
            action_dist = nn.DiagGaussian(
                decoded_a[:, : self.action_dim], decoded_a[:, self.action_dim :]
            )
            norm_actions = (stacked_actions - self.action_mean) / self.action_std
            action_row_logp = action_dist.log_prob(norm_actions)  # [K·N]

        prior = nn.DiagGaussian(
            nn.Tensor(np.zeros(latent)), nn.Tensor(np.zeros(latent))
        )
        elbos: List[nn.Tensor] = []
        for index in range(k):
            block = slice(index * n, (index + 1) * n)
            recon = state_row_logp[block].sum()
            if action_row_logp is not None:
                recon = recon + action_row_logp[block].sum()
            kl = posteriors[index].kl(prior)
            elbos.append((recon - kl) * (1.0 / n))
        return elbos

    # ------------------------------------------------------------------
    # reconstruction / analysis
    # ------------------------------------------------------------------
    def decode_state_distribution(self, upsilon: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """ψ_s = (mean, std) of the decoded state distribution in raw scale."""
        with nn.no_grad():
            decoded = self.state_decoder(
                nn.Tensor(np.asarray(upsilon).reshape(1, self.config.latent_dim))
            ).data[0]
        mean = decoded[: self.state_dim] * self.state_std + self.state_mean
        std = np.exp(np.clip(decoded[self.state_dim :], -10, 4)) * self.state_std
        return mean, std

    def sample_reconstruction(
        self,
        states: np.ndarray,
        actions: Optional[np.ndarray],
        rng: np.random.Generator,
        num_samples: Optional[int] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Draw a synthetic set X̂ ~ p_θ(· | υ) with υ ~ q_κ(υ | X).

        Used for the reconstruction histograms of Fig. 5 / Fig. 8 and the
        dataset-KLD metrics of Fig. 4 / Fig. 9(a).
        """
        n = num_samples or states.shape[0]
        with nn.no_grad():
            posterior = self.posterior(states, actions)
            upsilon = posterior.mean.data + np.exp(posterior.log_std.data) * rng.standard_normal(
                self.config.latent_dim
            )
            mean, std = self.decode_state_distribution(upsilon)
            recon_states = rng.normal(mean, std, size=(n, self.state_dim))
            if self.action_decoder is None:
                return recon_states, None
            norm_recon = (recon_states - self.state_mean) / self.state_std
            latent_tiled = np.tile(upsilon, (n, 1))
            decoded_a = self.action_decoder(
                nn.Tensor(np.concatenate([latent_tiled, norm_recon], axis=1))
            ).data
            a_mean = decoded_a[:, : self.action_dim] * self.action_std + self.action_mean
            a_std = np.exp(np.clip(decoded_a[:, self.action_dim :], -10, 4)) * self.action_std
            recon_actions = rng.normal(a_mean, a_std)
        return recon_states, recon_actions


def _batch_elbos(
    sadae: SADAE,
    sets: Sequence[StateActionSet],
    batch_ids: Sequence[int],
    rng: np.random.Generator,
) -> Dict[int, nn.Tensor]:
    """Per-set ELBOs for one optimisation step, set-batched where possible.

    Sets are grouped by cardinality (in first-appearance order) and each
    equal-cardinality group runs through :meth:`SADAE.elbo_batch`;
    singleton groups take the sequential :meth:`SADAE.elbo`. When all
    sets in the batch share one cardinality the υ-noise draws happen in
    exactly the sequential order, so the step is bit-identical to the
    unbatched loop; ragged batches reorder the draws group by group
    (a different but equally valid sample of the same objective).
    """
    by_cardinality: Dict[int, List[int]] = {}
    for set_id in batch_ids:
        by_cardinality.setdefault(sets[set_id][0].shape[0], []).append(set_id)
    elbos: Dict[int, nn.Tensor] = {}
    for group_ids in by_cardinality.values():
        if len(group_ids) == 1:
            states, actions = sets[group_ids[0]]
            elbos[group_ids[0]] = sadae.elbo(states, actions, rng)
        else:
            group_values = sadae.elbo_batch([sets[i] for i in group_ids], rng)
            for set_id, value in zip(group_ids, group_values):
                elbos[set_id] = value
    return elbos


def train_sadae(
    sadae: SADAE,
    sets: Sequence[StateActionSet],
    epochs: int,
    rng: Optional[np.random.Generator] = None,
    sets_per_step: int = 8,
    fit_normalizer: bool = True,
    callback=None,
    batched: bool = True,
) -> List[float]:
    """Optimise the Theorem 4.1 ELBO over a collection of X sets.

    Returns the per-epoch mean negative-ELBO losses. ``callback(epoch)``
    (if given) runs after every epoch — the benches use it to snapshot
    KLD / PCA trajectories during training.

    With ``batched`` (the default) each step's equal-cardinality sets are
    evaluated through one stacked :meth:`SADAE.elbo_batch` forward
    instead of one :meth:`SADAE.elbo` call per set — see
    :func:`_batch_elbos` for the exact-equivalence conditions. The loss
    of every step is accumulated in the sampled set order either way, so
    given identical parameters an equal-cardinality step's loss is
    bit-identical; across optimizer steps the batched backward sums
    gradients in a different order, letting parameters drift at the last
    ulp (per-epoch losses agree to ≤1e-10, enforced by
    ``tests/core/test_sadae_batched.py`` and ``benchmarks/perf_train.py``).
    """
    rng = rng or make_rng(sadae.config.seed)
    if fit_normalizer:
        sadae.fit_normalizer(sets)
    optimizer = nn.Adam(
        sadae.parameters(),
        lr=sadae.config.learning_rate,
        weight_decay=sadae.config.weight_decay,
    )
    losses: List[float] = []
    for epoch in range(epochs):
        order = rng.permutation(len(sets))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(order), sets_per_step):
            batch_ids = order[start : start + sets_per_step]
            optimizer.zero_grad()
            total = None
            if batched:
                elbos = _batch_elbos(sadae, sets, [int(i) for i in batch_ids], rng)
                for set_id in batch_ids:
                    value = -elbos[int(set_id)]
                    total = value if total is None else total + value
            else:
                for set_id in batch_ids:
                    states, actions = sets[set_id]
                    value = -sadae.elbo(states, actions, rng)
                    total = value if total is None else total + value
            loss = total * (1.0 / len(batch_ids))
            loss.backward()
            nn.clip_grad_norm(sadae.parameters(), 10.0)
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
        if callback is not None:
            callback(epoch)
    return losses

"""Post-processing guards against simulator errors (Sec. IV-C).

Three mechanisms keep the policy away from regions where the learned
simulators are wrong:

- **Uncertainty penalty** (prediction errors, Alg. 1 line 8):
  ``r ← r − α · U(s, a)`` with U the ensemble disagreement, plus the
  T_c-truncated rollouts from random logged initial states handled by
  :class:`repro.sim.env_wrapper.SimulatedDPREnv`.
- **F_trend** (extrapolation errors): an intervention test perturbs the
  bonus action by ΔB and checks each user's predicted order response
  against the prior knowledge that bonus elasticity is positive; users
  whose simulators respond with a non-positive slope are removed from
  training (they would otherwise teach the policy to cut bonuses for free
  engagement — the Fig. 10 pathology).
- **F_exec** (extrapolation errors): the executable action subspace. If
  the policy emits an action outside the user's historical
  ``(a_min, a_max)`` range, the state becomes terminal with reward
  ``R_min / (1 − γ)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..rl.buffer import RolloutSegment
from ..sim.dataset import GroupTrajectories
from ..sim.ensemble import SimulatorEnsemble


def apply_uncertainty_penalty(
    segment: RolloutSegment,
    ensemble: SimulatorEnsemble,
    alpha: float,
    estimator: str = "mean_deviation",
) -> np.ndarray:
    """r ← r − α · U(s, a) in place; returns the applied penalties [T, N].

    ``estimator`` selects the disagreement measure from
    :mod:`repro.sim.uncertainty` (the paper uses ``"mean_deviation"``).
    """
    from ..sim.uncertainty import get_uncertainty_estimator

    uncertainty_fn = get_uncertainty_estimator(estimator)
    steps, n = segment.rewards.shape
    penalties = np.zeros((steps, n))
    for t in range(steps):
        penalties[t] = uncertainty_fn(ensemble, segment.states[t], segment.actions[t])
    segment.rewards = segment.rewards - alpha * penalties
    return penalties


def apply_exec_filter(
    segment: RolloutSegment,
    exec_low: np.ndarray,
    exec_high: np.ndarray,
    r_min: float,
    gamma: float,
    tolerance: float = 0.0,
    action_clip: Optional[Tuple[float, float]] = None,
) -> int:
    """F_exec: cut episodes at the first out-of-range action (in place).

    ``exec_low`` / ``exec_high`` are per-user bounds ``[N, da]`` from the
    logged data. Returns the number of affected users. The done flag and
    the absorbing reward ``R_min / (1 − γ)`` are written at the violation
    step; later steps are invalidated through the validity mask computed at
    ``finalize`` time.

    ``action_clip`` should match the environment's action-space clipping so
    the filter judges the *executed* action, not the raw policy sample.
    """
    actions = segment.actions
    if action_clip is not None:
        actions = np.clip(actions, action_clip[0], action_clip[1])
    low = exec_low - tolerance
    high = exec_high + tolerance
    violations = np.any((actions < low[None]) | (actions > high[None]), axis=-1)  # [T, N]
    affected = 0
    terminal_reward = r_min / (1.0 - gamma)
    for user in range(segment.num_users):
        hits = np.nonzero(violations[:, user])[0]
        if hits.size == 0:
            continue
        first = hits[0]
        segment.dones[first, user] = 1.0
        segment.rewards[first, user] = terminal_reward
        affected += 1
    return affected


@dataclass
class TrendFilterResult:
    """Outcome of the intervention test behind F_trend."""

    keep_mask: np.ndarray        # [N] users whose response obeys the prior
    slopes: np.ndarray           # [K, N] per-simulator response slope
    response_curves: np.ndarray  # [K, N, D] predicted orders per ΔB


def intervention_response(
    ensemble: SimulatorEnsemble,
    group_log: GroupTrajectories,
    deltas: np.ndarray,
    action_index: int = 1,
) -> np.ndarray:
    """Predicted per-user order response to bonus shifts ΔB.

    For every driver, take their logged (s, a) pairs, shift the bonus
    dimension by each ΔB, and average each simulator's predicted orders
    over the driver's logged visits. Returns ``[K, N, D]`` for K ensemble
    members, N users and D delta values.
    """
    states = group_log.states[:, :-1]  # align with actions
    actions = group_log.actions
    e, t, n, ds = states.shape
    flat_states = states.reshape(e * t * n, ds)
    flat_actions = actions.reshape(e * t * n, actions.shape[-1])
    responses = np.zeros((len(ensemble), n, len(deltas)))
    for d_index, delta in enumerate(deltas):
        shifted = flat_actions.copy()
        shifted[:, action_index] = np.clip(shifted[:, action_index] + delta, 0.0, 1.0)
        for k, member in enumerate(ensemble.members):
            orders = member.predict_mean(flat_states, shifted)[:, 0]
            responses[k, :, d_index] = orders.reshape(e * t, n).mean(axis=0)
    return responses


def compute_trend_filter(
    ensemble: SimulatorEnsemble,
    group_log: GroupTrajectories,
    deltas: Optional[np.ndarray] = None,
    action_index: int = 1,
    mode: str = "consensus",
) -> TrendFilterResult:
    """Run the intervention test and flag users violating the bonus prior.

    The paper removes drivers "which the slope of reaction is negative or
    zero among all simulators" — i.e. drivers whose predicted response is
    consistently non-physical across the whole ensemble. Modes:

    - ``'consensus'`` (default, paper reading): remove a user only when
      *every* simulator predicts a non-positive slope;
    - ``'mean'``: remove when the ensemble-average slope is non-positive;
    - ``'strict'``: remove unless every simulator predicts a positive slope.
    """
    if deltas is None:
        deltas = np.linspace(-0.4, 0.4, 5)
    responses = intervention_response(ensemble, group_log, deltas, action_index)
    # Least-squares slope of orders vs ΔB for each (member, user).
    centered_d = deltas - deltas.mean()
    denom = float((centered_d**2).sum())
    slopes = ((responses - responses.mean(axis=2, keepdims=True)) * centered_d).sum(
        axis=2
    ) / denom
    if mode == "consensus":
        keep = np.any(slopes > 0.0, axis=0)
    elif mode == "mean":
        keep = slopes.mean(axis=0) > 0.0
    elif mode == "strict":
        keep = np.all(slopes > 0.0, axis=0)
    else:
        raise ValueError(f"unknown trend-filter mode {mode!r}")
    return TrendFilterResult(keep_mask=keep, slopes=slopes, response_curves=responses)


def filter_group_log(
    group_log: GroupTrajectories, keep_mask: np.ndarray
) -> GroupTrajectories:
    """Apply F_trend: restrict a group's log to users passing the test.

    Falls back to keeping everyone if the mask would empty the group (the
    filter must never abort training outright).
    """
    keep_mask = np.asarray(keep_mask, dtype=bool)
    if keep_mask.shape != (group_log.num_users,):
        raise ValueError("keep_mask must have one entry per user")
    if not np.any(keep_mask):
        return group_log
    return group_log.select_users(np.nonzero(keep_mask)[0])

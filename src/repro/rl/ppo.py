"""Proximal Policy Optimization (clip variant) over user-sequence rollouts.

The paper optimises Eq. (4) with PPO [46]; gradients flow through the
context-aware heads, the LSTM extractor φ and — for Sim2Rec — the SADAE
encoder q_κ, because ``evaluate_segment`` recomputes the whole pipeline
with the autodiff graph attached (full backpropagation through time).

Minibatches are drawn over *users* (whole sequences), never over time
steps, so recurrent state is always consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from .. import nn
from .buffer import RolloutBuffer, RolloutSegment
from .policies import ActorCriticBase


@dataclass
class PPOConfig:
    """Clipped-PPO hyper-parameters (paper defaults in Table II)."""

    learning_rate: float = 3e-4
    final_learning_rate: Optional[float] = None  # linear decay target (1e-6 in Table II)
    total_iterations: int = 100                  # decay horizon when final_learning_rate set
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 1e-3
    update_epochs: int = 4
    minibatches_per_segment: int = 2
    max_grad_norm: float = 0.5
    bootstrap_truncated: bool = False  # bootstrap V at segment end (T_c truncation)
    normalize_advantages: bool = True


class PPO:
    """One PPO learner bound to a policy (and optionally extra modules).

    ``extra_parameters`` lets the Sim2Rec trainer register the SADAE
    encoder's parameters so the Eq. (4) gradient also updates κ.
    """

    def __init__(
        self,
        policy: ActorCriticBase,
        config: PPOConfig,
        extra_parameters: Optional[List[nn.Parameter]] = None,
    ):
        self.policy = policy
        self.config = config
        params = policy.parameters()
        if extra_parameters:
            params = params + list(extra_parameters)
        self._all_params = params
        self.optimizer = nn.Adam(params, lr=config.learning_rate)
        self._schedule = None
        if config.final_learning_rate is not None:
            self._schedule = nn.LinearLRSchedule(
                self.optimizer,
                start=config.learning_rate,
                end=config.final_learning_rate,
                total=config.total_iterations,
            )

    # ------------------------------------------------------------------
    def update(self, buffer: RolloutBuffer) -> Dict[str, float]:
        """Run the clipped-PPO update over all segments in the buffer.

        The buffer must already be finalized (advantages computed); the
        trainer does so after applying its reward/done post-processing.
        """
        config = self.config
        stats = {"policy_loss": 0.0, "value_loss": 0.0, "entropy": 0.0, "clip_frac": 0.0}
        updates = 0
        for epoch in range(config.update_epochs):
            for segment in buffer:
                if segment.advantages is None:
                    raise RuntimeError("buffer not finalized before PPO.update")
                for user_idx in self._user_minibatches(segment, epoch):
                    metrics = self._update_minibatch(segment, user_idx)
                    for key in stats:
                        stats[key] += metrics[key]
                    updates += 1
        if self._schedule is not None:
            self._schedule.step()
        if updates:
            for key in stats:
                stats[key] /= updates
        stats["learning_rate"] = self.optimizer.lr
        return stats

    def _user_minibatches(self, segment: RolloutSegment, epoch: int) -> Iterable[np.ndarray]:
        n = segment.num_users
        count = min(self.config.minibatches_per_segment, n)
        order = np.random.default_rng(hash((epoch, id(segment))) % (2**32)).permutation(n)
        return np.array_split(order, count)

    def _update_minibatch(self, segment: RolloutSegment, user_idx: np.ndarray) -> Dict[str, float]:
        config = self.config
        advantages = (
            segment.normalized_advantages()
            if config.normalize_advantages
            else segment.advantages
        )
        adv = advantages[:, user_idx]
        returns = segment.returns[:, user_idx]
        old_log_probs = segment.log_probs[:, user_idx]
        mask = segment.valid_mask[:, user_idx]
        mask_total = max(mask.sum(), 1.0)

        log_probs, values, entropy = self.policy.evaluate_segment(segment, user_idx)

        mask_t = nn.Tensor(mask)
        ratio = (log_probs - old_log_probs).exp()
        surrogate = ratio * adv
        clipped = ratio.clip(1.0 - config.clip_ratio, 1.0 + config.clip_ratio) * adv
        policy_loss = -(surrogate.minimum(clipped) * mask_t).sum() / mask_total

        value_error = values - returns
        value_loss = ((value_error * value_error) * mask_t).sum() / mask_total

        entropy_mean = (entropy * mask_t).sum() / mask_total

        loss = (
            policy_loss
            + config.value_coef * value_loss
            - config.entropy_coef * entropy_mean
        )
        self.optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(self._all_params, config.max_grad_norm)
        self.optimizer.step()

        clip_frac = float(
            ((np.abs(ratio.data - 1.0) > config.clip_ratio) * mask).sum() / mask_total
        )
        return {
            "policy_loss": policy_loss.item(),
            "value_loss": value_loss.item(),
            "entropy": entropy_mean.item(),
            "clip_frac": clip_frac,
        }

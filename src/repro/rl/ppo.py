"""Proximal Policy Optimization (clip variant) over user-sequence rollouts.

The paper optimises Eq. (4) with PPO [46]; gradients flow through the
context-aware heads, the LSTM extractor φ and — for Sim2Rec — the SADAE
encoder q_κ, because ``evaluate_segment`` recomputes the whole pipeline
with the autodiff graph attached (full backpropagation through time).

Minibatches are drawn over *users* (whole sequences), never over time
steps, so recurrent state is always consistent.

Stacked-segment updates
-----------------------
With ``PPOConfig.batch_segments`` (the default) each epoch buckets the
buffer's segments by horizon and evaluates every same-length segment's
minibatch in one time-major ``[T, sum-of-users, d]`` BPTT pass
(:meth:`~repro.rl.policies.ActorCriticBase.evaluate_segments_batched`),
taking one optimizer step per minibatch *round* instead of one per
(segment, minibatch) pair. The forward numbers are bit-identical to
per-segment evaluation; the optimisation granularity changes — K
same-length segments mean K× fewer, K×-larger steps per epoch, the
standard trade of vectorized PPO implementations. Buckets holding a
single segment take the legacy per-segment path, so single-segment
buffers (and all ragged leftovers) update exactly as with
``batch_segments=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from .buffer import RolloutBuffer, RolloutSegment
from .policies import ActorCriticBase


@dataclass
class PPOConfig:
    """Clipped-PPO hyper-parameters (paper defaults in Table II)."""

    learning_rate: float = 3e-4
    final_learning_rate: Optional[float] = None  # linear decay target (1e-6 in Table II)
    total_iterations: int = 100                  # decay horizon when final_learning_rate set
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 1e-3
    update_epochs: int = 4
    minibatches_per_segment: int = 2
    max_grad_norm: float = 0.5
    bootstrap_truncated: bool = False  # bootstrap V at segment end (T_c truncation)
    normalize_advantages: bool = True
    # Stack same-length segments into one BPTT pass per minibatch round
    # (see the module docstring); single-segment buckets are unaffected.
    batch_segments: bool = True


class PPO:
    """One PPO learner bound to a policy (and optionally extra modules).

    ``extra_parameters`` lets the Sim2Rec trainer register the SADAE
    encoder's parameters so the Eq. (4) gradient also updates κ.
    """

    def __init__(
        self,
        policy: ActorCriticBase,
        config: PPOConfig,
        extra_parameters: Optional[List[nn.Parameter]] = None,
    ):
        self.policy = policy
        self.config = config
        params = policy.parameters()
        if extra_parameters:
            params = params + list(extra_parameters)
        self._all_params = params
        self.optimizer = nn.Adam(params, lr=config.learning_rate)
        self._schedule = None
        if config.final_learning_rate is not None:
            self._schedule = nn.LinearLRSchedule(
                self.optimizer,
                start=config.learning_rate,
                end=config.final_learning_rate,
                total=config.total_iterations,
            )

    # ------------------------------------------------------------------
    def update(self, buffer: RolloutBuffer) -> Dict[str, float]:
        """Run the clipped-PPO update over all segments in the buffer.

        The buffer must already be finalized (advantages computed); the
        trainer does so after applying its reward/done post-processing.
        """
        config = self.config
        stats = {"policy_loss": 0.0, "value_loss": 0.0, "entropy": 0.0, "clip_frac": 0.0}
        updates = 0
        for segment in buffer:
            if segment.advantages is None:
                raise RuntimeError("buffer not finalized before PPO.update")
        for epoch in range(config.update_epochs):
            if config.batch_segments:
                epoch_metrics = self._update_epoch_batched(buffer, epoch)
            else:
                epoch_metrics = [
                    self._update_minibatch(segment, user_idx)
                    for index, segment in enumerate(buffer)
                    for user_idx in self._user_minibatches(segment, epoch, index)
                ]
            for metrics in epoch_metrics:
                for key in stats:
                    stats[key] += metrics[key]
                updates += 1
        if self._schedule is not None:
            self._schedule.step()
        if updates:
            for key in stats:
                stats[key] /= updates
        stats["learning_rate"] = self.optimizer.lr
        return stats

    def _user_minibatches(
        self, segment: RolloutSegment, epoch: int, index: int
    ) -> Iterable[np.ndarray]:
        """Minibatch user splits, seeded by (epoch, buffer position).

        The position-derived seed (rather than ``id(segment)``, whose
        memory address made every run's shuffles unique) keeps the whole
        PPO update reproducible: same buffer contents → same minibatch
        order, across runs, processes and rollout worker counts.
        """
        n = segment.num_users
        count = min(self.config.minibatches_per_segment, n)
        order = np.random.default_rng(hash((epoch, index)) % (2**32)).permutation(n)
        return np.array_split(order, count)

    def _update_epoch_batched(
        self, buffer: RolloutBuffer, epoch: int
    ) -> List[Dict[str, float]]:
        """One epoch of stacked-segment updates (length-bucketed).

        Segments are bucketed by horizon in buffer order; within a bucket
        the r-th minibatches of every segment form one stacked update step.
        A bucket of one (including every ragged leftover length) runs the
        legacy per-segment path, bit-identical to ``batch_segments=False``.
        """
        buckets: Dict[int, List[Tuple[int, RolloutSegment]]] = {}
        for index, segment in enumerate(buffer):
            buckets.setdefault(segment.horizon, []).append((index, segment))
        metrics: List[Dict[str, float]] = []
        for bucket in buckets.values():
            if len(bucket) == 1:
                index, segment = bucket[0]
                for user_idx in self._user_minibatches(segment, epoch, index):
                    metrics.append(self._update_minibatch(segment, user_idx))
                continue
            splits = [
                list(self._user_minibatches(s, epoch, i)) for i, s in bucket
            ]
            for round_idx in range(max(len(split) for split in splits)):
                members = [
                    (segment, split[round_idx])
                    for (_, segment), split in zip(bucket, splits)
                    if round_idx < len(split)
                ]
                metrics.append(self._update_stacked(members))
        return metrics

    def _minibatch_targets(
        self, segment: RolloutSegment, user_idx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(advantages, returns, old log-probs, mask) for one minibatch."""
        advantages = (
            segment.normalized_advantages()
            if self.config.normalize_advantages
            else segment.advantages
        )
        return (
            advantages[:, user_idx],
            segment.returns[:, user_idx],
            segment.log_probs[:, user_idx],
            segment.valid_mask[:, user_idx],
        )

    def _update_minibatch(self, segment: RolloutSegment, user_idx: np.ndarray) -> Dict[str, float]:
        adv, returns, old_log_probs, mask = self._minibatch_targets(segment, user_idx)
        log_probs, values, entropy = self.policy.evaluate_segment(segment, user_idx)
        return self._loss_step(log_probs, values, entropy, adv, returns, old_log_probs, mask)

    def _update_stacked(
        self, members: Sequence[Tuple[RolloutSegment, np.ndarray]]
    ) -> Dict[str, float]:
        """One optimizer step over several segments' stacked minibatches.

        Advantage normalisation stays per segment (each segment's own
        valid-step statistics, as in the sequential path); only the
        forward/backward pass and the optimizer step are shared.
        """
        targets = [self._minibatch_targets(s, idx) for s, idx in members]
        adv, returns, old_log_probs, mask = (
            np.concatenate([t[field] for t in targets], axis=1) for field in range(4)
        )
        log_probs, values, entropy = self.policy.evaluate_segments_batched(
            [s for s, _ in members], [idx for _, idx in members]
        )
        return self._loss_step(log_probs, values, entropy, adv, returns, old_log_probs, mask)

    def _loss_step(
        self,
        log_probs: nn.Tensor,
        values: nn.Tensor,
        entropy: nn.Tensor,
        adv: np.ndarray,
        returns: np.ndarray,
        old_log_probs: np.ndarray,
        mask: np.ndarray,
    ) -> Dict[str, float]:
        """Clipped-PPO loss on ``[T, B]`` evaluation outputs + one step."""
        config = self.config
        mask_total = max(mask.sum(), 1.0)
        mask_t = nn.Tensor(mask)
        ratio = (log_probs - old_log_probs).exp()
        surrogate = ratio * adv
        clipped = ratio.clip(1.0 - config.clip_ratio, 1.0 + config.clip_ratio) * adv
        policy_loss = -(surrogate.minimum(clipped) * mask_t).sum() / mask_total

        value_error = values - returns
        value_loss = ((value_error * value_error) * mask_t).sum() / mask_total

        entropy_mean = (entropy * mask_t).sum() / mask_total

        loss = (
            policy_loss
            + config.value_coef * value_loss
            - config.entropy_coef * entropy_mean
        )
        self.optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(self._all_params, config.max_grad_norm)
        self.optimizer.step()

        clip_frac = float(
            ((np.abs(ratio.data - 1.0) > config.clip_ratio) * mask).sum() / mask_total
        )
        return {
            "policy_loss": policy_loss.item(),
            "value_loss": value_loss.item(),
            "entropy": entropy_mean.item(),
            "clip_frac": clip_frac,
        }

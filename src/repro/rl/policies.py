"""Actor-critic policies for multi-user PPO.

Two families:

- :class:`MLPActorCritic` — feed-forward Gaussian policy π(a | s). Used by
  the DIRECT baseline and (trained across the simulator set) by DR-UNI,
  which is exactly "Sim2Rec with a constant φ output".
- :class:`RecurrentActorCritic` — an LSTM environment-parameter extractor
  z_t = φ(x_t, z_{t-1}) with x_t = [context_t, a_{t-1}, s_t], feeding a
  context-aware head π(a | s_t, z_t). With an empty context this is the
  DR-OSI architecture [15]; Sim2Rec subclasses it and injects the SADAE
  group embedding υ_t as context (Fig. 2).

Both expose the same rollout/update interface consumed by
:mod:`repro.rl.runner` and :mod:`repro.rl.ppo`:

- ``start_rollout(num_users)`` — reset per-episode recurrent state;
- ``act(states, prev_actions, rng)`` — sample actions without gradients;
- ``evaluate_segment(segment, user_idx)`` — recompute log-probs / values /
  entropy with gradients (full BPTT for recurrent policies).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from .buffer import RolloutSegment


class ActorCriticBase(nn.Module):
    """Shared interface; see module docstring."""

    recurrent: bool = False
    # Block structure of the current rollout batch (set by the vectorized
    # collector); None means the whole batch is one group.
    _rollout_groups: Optional[Sequence[slice]] = None

    def start_rollout(self, num_users: int) -> None:
        """Reset any per-episode internal state (no-op for feed-forward)."""
        self._rollout_groups = None

    def set_rollout_groups(self, groups: Optional[Sequence[slice]]) -> None:
        """Declare the per-env blocks of a stacked rollout batch.

        Group-level machinery (the SADAE context in
        :class:`~repro.core.policy.Sim2RecPolicy`) must never mix users
        across environments; the vectorized collector calls this after
        ``start_rollout`` so context is computed block by block.
        """
        self._rollout_groups = list(groups) if groups is not None else None

    def act(
        self,
        states: np.ndarray,
        prev_actions: np.ndarray,
        rng: np.random.Generator,
        deterministic: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # session state (serving layer)
    # ------------------------------------------------------------------
    def recurrent_state(self):
        """Numpy snapshot of the per-rollout recurrent state, or None.

        Feed-forward policies carry no state between ``act`` calls, so the
        base returns None. :class:`RecurrentActorCritic` returns plain
        arrays (copies) that :meth:`set_recurrent_state` can restore later
        — the pair is how :class:`repro.serve.PolicyServer` checkpoints a
        session's extractor state between microbatches.
        """
        return None

    def set_recurrent_state(self, state) -> None:
        """Restore a :meth:`recurrent_state` snapshot (no-op base)."""
        if state is not None:  # pragma: no cover - defensive
            raise ValueError(
                f"{type(self).__name__} is stateless; cannot restore recurrent state"
            )

    # ------------------------------------------------------------------
    # replica synchronisation (shard-parallel rollout workers)
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict[str, np.ndarray]:
        """Non-parameter arrays a rollout replica needs to act faithfully.

        ``state_dict`` only covers :class:`~repro.nn.module.Parameter`
        tensors; policies whose forward pass also reads plain-array
        buffers (e.g. the SADAE input normaliser of
        :class:`~repro.core.policy.Sim2RecPolicy`) override this so the
        per-iteration parameter broadcast carries them too. Values must
        be plain numpy arrays (the broadcast is pickle-free).
        """
        return {}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`extra_state` (no-op by default)."""

    def replica_state(self) -> Dict[str, np.ndarray]:
        """Everything a worker-side replica must load each iteration.

        One flat name → array mapping: ``param.*`` entries are the
        ``state_dict`` and ``extra.*`` entries the :meth:`extra_state`
        buffers. Serialised with :func:`repro.nn.state_to_bytes` for the
        delta-free broadcast; loading it via :meth:`load_replica_state`
        makes the replica's forward pass bit-identical to the source
        policy's (same bytes in every weight and buffer).
        """
        state = {f"param.{k}": v for k, v in self.state_dict().items()}
        for key, value in self.extra_state().items():
            state[f"extra.{key}"] = np.asarray(value)
        return state

    def load_replica_state(self, state: Dict[str, np.ndarray]) -> None:
        """Load a :meth:`replica_state` mapping into this policy."""
        params = {k[len("param."):]: v for k, v in state.items() if k.startswith("param.")}
        extra = {k[len("extra."):]: v for k, v in state.items() if k.startswith("extra.")}
        self.load_state_dict(params)
        self.load_extra_state(extra)

    def evaluate_segment(
        self, segment: RolloutSegment, user_idx: np.ndarray
    ) -> Tuple[nn.Tensor, nn.Tensor, nn.Tensor]:  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def _check_equal_horizons(segments: Sequence[RolloutSegment]) -> int:
        horizons = {segment.horizon for segment in segments}
        if len(horizons) != 1:
            raise ValueError(
                f"evaluate_segments_batched needs equal-length segments, got "
                f"horizons {sorted(horizons)}; bucket ragged segments by length first"
            )
        return horizons.pop()

    def evaluate_segments_batched(
        self,
        segments: Sequence[RolloutSegment],
        user_idxs: Sequence[np.ndarray],
    ) -> Tuple[nn.Tensor, nn.Tensor, nn.Tensor]:
        """Evaluate several same-length segments in one stacked forward pass.

        The batched counterpart of :meth:`evaluate_segment`: segment ``k``'s
        selected users occupy rows ``sum(len(user_idxs[:k])) ..`` of the
        user axis, giving time-major ``[T, sum-of-users]`` log-probs,
        values and entropies. The contract mirrors the rollout engine's
        (:mod:`repro.rl.vec`): every number is **bit-identical** to calling
        ``evaluate_segment(segments[k], user_idxs[k])`` one segment at a
        time, because each row's arithmetic never mixes users across
        segments (group-level context is computed per segment) and all
        matmuls are batch-length independent row-wise.

        All segments must share one horizon — :class:`repro.rl.ppo.PPO`
        buckets ragged segments by length before calling this. The base
        implementation loops :meth:`evaluate_segment` and concatenates
        (correct for any subclass); :class:`MLPActorCritic` and
        :class:`RecurrentActorCritic` override it with genuinely stacked
        forwards.
        """
        self._check_equal_horizons(segments)
        outs = [
            self.evaluate_segment(segment, idx)
            for segment, idx in zip(segments, user_idxs)
        ]
        return tuple(
            nn.concat([out[field] for out in outs], axis=1) for field in range(3)
        )

    def as_act_fn(self, rng: np.random.Generator, deterministic: bool = True):
        """Adapt to the ``evaluate_policy`` callable protocol."""
        policy = self

        class _ActFn:
            def reset(self, num_users: int) -> None:
                policy.start_rollout(num_users)
                self._prev_actions: Optional[np.ndarray] = None

            def set_rollout_groups(self, groups) -> None:
                policy.set_rollout_groups(groups)

            def __call__(self, states: np.ndarray, t: int) -> np.ndarray:
                if self._prev_actions is None:
                    self._prev_actions = np.zeros((states.shape[0], policy.action_dim))
                actions, _, _ = policy.act(
                    states, self._prev_actions, rng, deterministic=deterministic
                )
                self._prev_actions = actions
                return actions

        fn = _ActFn()
        fn.reset(0)
        return fn


class MLPActorCritic(ActorCriticBase):
    """Feed-forward Gaussian policy with a state-independent log-std."""

    recurrent = False

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
        hidden_sizes: Tuple[int, ...] = (64, 64),
        init_log_std: float = -0.5,
    ):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.actor = nn.MLP(
            [state_dim, *hidden_sizes, action_dim], rng, activation="tanh", out_gain=0.01
        )
        self.critic = nn.MLP([state_dim, *hidden_sizes, 1], rng, activation="tanh")
        self.log_std = nn.Parameter(np.full(action_dim, init_log_std), name="log_std")

    def _distribution(self, states: nn.Tensor) -> nn.DiagGaussian:
        mean = self.actor(states).sigmoid()  # actions live in [0, 1]
        return nn.DiagGaussian(mean, self.log_std)

    def act(self, states, prev_actions, rng, deterministic=False):
        with nn.no_grad():
            states_t = nn.Tensor(np.asarray(states, dtype=np.float64))
            dist = self._distribution(states_t)
            actions = dist.mode() if deterministic else dist.sample(rng)
            log_probs = dist.log_prob(actions).data
            values = self.critic(states_t).data[:, 0]
        return actions, log_probs, values

    def evaluate_segment(self, segment, user_idx):
        t, b = segment.horizon, len(user_idx)
        states = segment.states[:, user_idx].reshape(t * b, self.state_dim)
        actions = segment.actions[:, user_idx].reshape(t * b, self.action_dim)
        states_t = nn.Tensor(states)
        dist = self._distribution(states_t)
        log_probs = dist.log_prob(actions).reshape(t, b)
        values = self.critic(states_t).reshape(t, b)
        entropy = dist.entropy().reshape(t, b)
        return log_probs, values, entropy

    def evaluate_segments_batched(self, segments, user_idxs):
        """Stacked evaluation: one actor/critic forward for all segments.

        Feed-forward policies have no cross-user state at all, so batching
        is a pure concatenation on the user axis; see
        :meth:`ActorCriticBase.evaluate_segments_batched` for the
        bit-equivalence contract.
        """
        t = self._check_equal_horizons(segments)
        counts = [len(idx) for idx in user_idxs]
        total = sum(counts)
        # [T, sum_b, d] -> [T * sum_b, d] with each segment's block intact
        states = np.concatenate(
            [s.states[:, idx] for s, idx in zip(segments, user_idxs)], axis=1
        ).reshape(t * total, self.state_dim)
        actions = np.concatenate(
            [s.actions[:, idx] for s, idx in zip(segments, user_idxs)], axis=1
        ).reshape(t * total, self.action_dim)
        states_t = nn.Tensor(states)
        dist = self._distribution(states_t)
        log_probs = dist.log_prob(actions).reshape(t, total)
        values = self.critic(states_t).reshape(t, total)
        entropy = dist.entropy().reshape(t, total)
        return log_probs, values, entropy


class RecurrentActorCritic(ActorCriticBase):
    """LSTM extractor + context-aware Gaussian head (DR-OSI / Sim2Rec core).

    Subclasses provide a per-step group context by overriding
    :meth:`_rollout_context` (numpy, no grad) and
    :meth:`_segment_context` (Tensor sequence, with grad); the base class
    uses an empty context, which recovers the DR-OSI architecture.
    """

    recurrent = True

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
        lstm_hidden: int = 64,
        head_hidden: Tuple[int, ...] = (128, 64),
        context_dim: int = 0,
        init_log_std: float = -0.5,
        cell: str = "lstm",
    ):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.context_dim = context_dim
        input_dim = state_dim + action_dim + context_dim
        if cell == "lstm":
            self.extractor = nn.LSTMCell(input_dim, lstm_hidden, rng)
        elif cell == "gru":
            self.extractor = nn.GRUCell(input_dim, lstm_hidden, rng)
        else:
            raise ValueError(f"unknown recurrent cell {cell!r}; expected 'lstm' or 'gru'")
        self.cell_type = cell
        head_in = state_dim + lstm_hidden
        self.actor = nn.MLP(
            [head_in, *head_hidden, action_dim], rng, activation="tanh", out_gain=0.01
        )
        self.critic = nn.MLP([head_in, *head_hidden, 1], rng, activation="tanh")
        self.log_std = nn.Parameter(np.full(action_dim, init_log_std), name="log_std")
        self._state: Optional[Tuple[nn.Tensor, nn.Tensor]] = None

    # ------------------------------------------------------------------
    # context hooks (overridden by the Sim2Rec policy)
    # ------------------------------------------------------------------
    def _rollout_context(self, states: np.ndarray, prev_actions: np.ndarray) -> Optional[np.ndarray]:
        """Per-step context for rollouts, shape ``[N, context_dim]`` or None."""
        return None

    def _segment_context(self, segment: RolloutSegment) -> Optional[nn.Tensor]:
        """Full-sequence context with gradients, shape ``[T, context_dim]``.

        The context is *group-level*: one vector per timestep shared by all
        users (it is computed from the whole group's state-action set), so
        it broadcasts over the user axis during evaluation.
        """
        return None

    # ------------------------------------------------------------------
    def start_rollout(self, num_users: int) -> None:
        super().start_rollout(num_users)
        self._state = self.extractor.initial_state(num_users)

    def _advance(self, x: nn.Tensor, state):
        """One extractor step; returns (z, new_state) for either cell type."""
        if self.cell_type == "lstm":
            z, state = self.extractor(x, state)
            return z, state
        h = self.extractor(x, state)
        return h, h

    def _state_batch_size(self) -> int:
        if self._state is None:
            return -1
        h = self._state[0] if isinstance(self._state, tuple) else self._state
        return h.shape[0]

    def recurrent_state(self):
        if self._state is None:
            return None
        if isinstance(self._state, tuple):
            return tuple(np.array(part.data) for part in self._state)
        return np.array(self._state.data)

    def set_recurrent_state(self, state) -> None:
        if state is None:
            self._state = None
        elif isinstance(state, tuple):
            self._state = tuple(nn.Tensor(np.array(part, dtype=np.float64)) for part in state)
        else:
            self._state = nn.Tensor(np.array(state, dtype=np.float64))

    def _heads(self, states_t: nn.Tensor, z: nn.Tensor) -> Tuple[nn.DiagGaussian, nn.Tensor]:
        features = nn.concat([states_t, z], axis=-1)
        mean = self.actor(features).sigmoid()
        values = self.critic(features)
        return nn.DiagGaussian(mean, self.log_std), values

    def act(self, states, prev_actions, rng, deterministic=False):
        if self._state_batch_size() != states.shape[0]:
            self.start_rollout(states.shape[0])
        with nn.no_grad():
            states = np.asarray(states, dtype=np.float64)
            prev_actions = np.asarray(prev_actions, dtype=np.float64)
            parts = [states, prev_actions]
            context = self._rollout_context(states, prev_actions)
            if context is not None:
                parts.append(context)
            x = nn.Tensor(np.concatenate(parts, axis=-1))
            z, self._state = self._advance(x, self._state)
            states_t = nn.Tensor(states)
            dist, values = self._heads(states_t, z)
            actions = dist.mode() if deterministic else dist.sample(rng)
            log_probs = dist.log_prob(actions).data
        return actions, log_probs, values.data[:, 0]

    def evaluate_segment(self, segment, user_idx):
        t = segment.horizon
        b = len(user_idx)
        context_seq = self._segment_context(segment)
        state = self.extractor.initial_state(b)
        log_probs, values, entropies = [], [], []
        for step in range(t):
            states_np = segment.states[step, user_idx]
            prev_np = segment.prev_actions[step, user_idx]
            states_t = nn.Tensor(states_np)
            parts = [states_t, nn.Tensor(prev_np)]
            if context_seq is not None:
                step_context = context_seq[step].reshape(1, self.context_dim)
                tiled = nn.concat([step_context] * b, axis=0)
                parts.append(tiled)
            x = nn.concat(parts, axis=-1)
            z, state = self._advance(x, state)
            dist, value = self._heads(states_t, z)
            log_probs.append(dist.log_prob(segment.actions[step, user_idx]))
            values.append(value[:, 0])
            entropies.append(dist.entropy())
        return (
            nn.stack(log_probs, axis=0),
            nn.stack(values, axis=0),
            nn.stack(entropies, axis=0),
        )

    def evaluate_segments_batched(self, segments, user_idxs):
        """One time-major BPTT pass over every segment's selected users.

        Stacks the segments on the user axis (``[T, sum-of-users, d]``) so
        the extractor cell, heads and distributions run once per timestep
        for the whole batch instead of once per segment — the same
        block-diagonal trick :func:`repro.rl.vec.collect_segments_vec`
        applies to rollouts, now with the autodiff graph attached.

        Bit-equivalence with per-segment :meth:`evaluate_segment` holds
        because (a) the recurrent state of row i only ever reads row i,
        (b) group-level context is computed per segment, in segment order,
        so any embedding-noise stream advances exactly as the sequential
        loop would, and (c) context tiling uses :func:`repro.nn.tile_rows`,
        whose forward is value-identical to the per-user concat tiling.
        """
        t = self._check_equal_horizons(segments)
        counts = [len(idx) for idx in user_idxs]
        total = sum(counts)
        # Per-segment context first (in order): each call may consume the
        # embedding-noise stream, and the draws must happen segment by
        # segment exactly like sequential evaluation.
        context_seqs = [self._segment_context(segment) for segment in segments]
        have_context = [c is not None for c in context_seqs]
        if any(have_context) and not all(have_context):
            raise RuntimeError("segments disagree on context availability")
        states_all = np.concatenate(
            [s.states[:, idx] for s, idx in zip(segments, user_idxs)], axis=1
        )
        prev_all = np.concatenate(
            [s.prev_actions[:, idx] for s, idx in zip(segments, user_idxs)], axis=1
        )
        actions_all = np.concatenate(
            [s.actions[:, idx] for s, idx in zip(segments, user_idxs)], axis=1
        )
        state = self.extractor.initial_state(total)
        log_probs, values, entropies = [], [], []
        for step in range(t):
            states_t = nn.Tensor(states_all[step])
            parts = [states_t, nn.Tensor(prev_all[step])]
            if all(have_context):
                step_rows = nn.stack(
                    [c[step] for c in context_seqs], axis=0
                )  # [K, context_dim]
                parts.append(nn.tile_rows(step_rows, counts))
            x = nn.concat(parts, axis=-1)
            z, state = self._advance(x, state)
            dist, value = self._heads(states_t, z)
            log_probs.append(dist.log_prob(actions_all[step]))
            values.append(value[:, 0])
            entropies.append(dist.entropy())
        return (
            nn.stack(log_probs, axis=0),
            nn.stack(values, axis=0),
            nn.stack(entropies, axis=0),
        )

"""Cross-mode rollout parity harness.

The repo's rollout engine has four collection modes that are contractually
**bit-identical** for matched per-env policy-noise streams:

- ``sequential`` — :func:`repro.rl.runner.collect_segments_sequential`,
  one env at a time. The reference semantics.
- ``vectorized`` — :func:`repro.rl.vec.collect_segments_vec` over an
  in-process :class:`~repro.rl.vec.VecEnvPool` (one ``policy.act`` per
  timestep for all envs).
- ``sharded`` — the same collector over a
  :class:`~repro.rl.workers.ShardedVecEnvPool` step server (env
  transitions in worker processes, policy forward in the parent).
- ``shard_parallel`` — full rollouts in the workers: policy replicas act
  per shard (:meth:`~repro.rl.workers.ShardedVecEnvPool.sync_policy` +
  :meth:`~repro.rl.workers.ShardedVecEnvPool.collect_rollouts`).

This module is the *single* place that equivalence is spelled out:
``tests/rl/test_rollout_parity.py`` drives :func:`verify_rollout_parity`
across mode × shard-count × env-layout × policy grids, and
``benchmarks/perf_rollout.py`` calls the same helpers as its pre-timing
equivalence gate — a bench never times a path this harness has not just
proven bit-identical.

Why bit-identity survives replica forwards: replica weights round-trip
byte-exact (npz archives, no pickled floats), the nn engine's row-stable
matmul contract makes a forward over any row subset equal the same rows
of the stacked forward, per-env policy noise comes from
:class:`~repro.rl.vec.BlockRNG` streams pinned to env identity, and env
RNGs travel inside the pickled envs. See :mod:`repro.rl.workers`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..envs.base import MultiUserEnv
from .buffer import RolloutSegment
from .policies import ActorCriticBase
from .runner import collect_segments_sequential
from .vec import TRAJECTORY_FIELDS, ShardableVecPool, collect_segments_vec
from .workers import ShardedVecEnvPool

#: Every rollout collection mode, reference first.
ROLLOUT_MODES: Tuple[str, ...] = (
    "sequential",
    "vectorized",
    "sharded",
    "shard_parallel",
)

#: Modes that run worker processes (need a multiprocessing start method).
SHARDED_MODES: Tuple[str, ...] = ("sharded", "shard_parallel")

#: Array fields of a RolloutSegment compared for bitwise equality: the
#: per-step trajectory arrays plus the bootstrap values.
SEGMENT_FIELDS: Tuple[str, ...] = TRAJECTORY_FIELDS + ("last_values",)


def assert_segments_identical(
    expected: Sequence[RolloutSegment],
    actual: Sequence[RolloutSegment],
    label: str = "segments",
) -> None:
    """Bitwise comparison of two segment lists; raises ``AssertionError``.

    Checks every :data:`SEGMENT_FIELDS` array (shape and bytes), the
    group ids, and the extras dicts. ``label`` prefixes failure messages
    so parametrized tests and bench scenarios stay attributable.
    """
    if len(expected) != len(actual):
        raise AssertionError(
            f"{label}: {len(expected)} reference segments vs {len(actual)} collected"
        )
    for index, (ref, got) in enumerate(zip(expected, actual)):
        where = f"{label}[{index}]"
        if ref.group_id != got.group_id:
            raise AssertionError(
                f"{where}: group_id {got.group_id!r} != {ref.group_id!r}"
            )
        for name in SEGMENT_FIELDS:
            a, b = getattr(ref, name), getattr(got, name)
            if a.shape != b.shape:
                raise AssertionError(f"{where}.{name}: shape {b.shape} != {a.shape}")
            np.testing.assert_array_equal(b, a, err_msg=f"{where}.{name}")
        if set(ref.extras) != set(got.extras):
            raise AssertionError(
                f"{where}.extras: keys {sorted(got.extras)} != {sorted(ref.extras)}"
            )
        for key in ref.extras:
            np.testing.assert_array_equal(
                got.extras[key], ref.extras[key], err_msg=f"{where}.extras[{key}]"
            )


def collect_rollout_mode(
    mode: str,
    envs: Sequence[MultiUserEnv],
    policy: ActorCriticBase,
    rngs: Sequence[np.random.Generator],
    num_workers: int = 2,
    max_steps: Optional[int] = None,
    extras_from_info: Tuple[str, ...] = (),
    pool: Optional[ShardableVecPool] = None,
    pool_kwargs: Optional[dict] = None,
) -> List[RolloutSegment]:
    """Collect one round of segments through the named rollout mode.

    ``envs`` advance in place for the in-process modes and inside the
    worker processes for the sharded ones — pass fresh envs per call
    when comparing modes. A prebuilt ``pool`` overrides ``envs`` for the
    pooled modes (a :class:`~repro.rl.vec.VecEnvPool` for ``vectorized``,
    a :class:`~repro.rl.workers.ShardedVecEnvPool` for the sharded
    ones); reuse one across calls to test multi-episode stream
    continuity. Sharded modes otherwise build a throwaway pool, with
    ``pool_kwargs`` forwarded to its constructor — the chaos tests route
    ``fault_policy`` / ``chaos`` through here so recovery runs under the
    exact parity harness that certifies the fault-free paths.
    """
    if mode == "sequential":
        return collect_segments_sequential(
            envs, policy, rngs, max_steps=max_steps, extras_from_info=extras_from_info
        )
    if mode == "vectorized":
        return collect_segments_vec(
            pool if pool is not None else envs,
            policy,
            rngs,
            max_steps=max_steps,
            extras_from_info=extras_from_info,
        )
    if mode not in SHARDED_MODES:
        raise ValueError(f"unknown rollout mode {mode!r}; expected one of {ROLLOUT_MODES}")
    owned = pool is None
    if pool is None:
        pool = ShardedVecEnvPool(envs, num_workers=num_workers, **(pool_kwargs or {}))
    elif not isinstance(pool, ShardedVecEnvPool):
        raise ValueError(f"mode {mode!r} needs a ShardedVecEnvPool, got {type(pool).__name__}")
    try:
        if mode == "sharded":
            return collect_segments_vec(
                pool, policy, rngs, max_steps=max_steps, extras_from_info=extras_from_info
            )
        pool.sync_policy(policy)
        return pool.collect_rollouts(
            rngs, max_steps=max_steps, extras_from_info=extras_from_info
        )
    finally:
        if owned:
            pool.close()


def verify_rollout_parity(
    make_envs: Callable[[], Sequence[MultiUserEnv]],
    policy: ActorCriticBase,
    seed: int,
    modes: Sequence[str] = ROLLOUT_MODES[1:],
    num_workers: int = 2,
    max_steps: Optional[int] = None,
    extras_from_info: Tuple[str, ...] = (),
    label: str = "parity",
    pool_kwargs: Optional[dict] = None,
) -> List[RolloutSegment]:
    """Assert every requested mode bit-reproduces the sequential loop.

    ``make_envs`` must return a *fresh* env set per call (same seeds →
    same initial state) because collection advances env state; every
    mode gets its own envs and its own per-env generators derived from
    ``seed``, so any mismatch is the collection path's fault alone.
    ``pool_kwargs`` reach the sharded pools' constructors (fault-policy
    and chaos injection for the robustness tests). Returns the
    sequential reference segments (benches reuse them).
    """
    reference_envs = make_envs()
    count = len(reference_envs)

    def fresh_rngs() -> List[np.random.Generator]:
        return [np.random.default_rng(seed + index) for index in range(count)]

    reference = collect_segments_sequential(
        reference_envs,
        policy,
        fresh_rngs(),
        max_steps=max_steps,
        extras_from_info=extras_from_info,
    )
    for mode in modes:
        collected = collect_rollout_mode(
            mode,
            make_envs(),
            policy,
            fresh_rngs(),
            num_workers=num_workers,
            max_steps=max_steps,
            extras_from_info=extras_from_info,
            pool_kwargs=pool_kwargs,
        )
        assert_segments_identical(reference, collected, label=f"{label}/{mode}")
    return reference


def verify_training_reproducibility(
    build_trainer: Callable[[], Any],
    iterations: int = 3,
    runs: int = 2,
    label: str = "reproducibility",
) -> List[dict]:
    """Assert a trainer factory reproduces its metric trajectory run to run.

    The verification primitive behind ``determinism="pipelined"``:
    strict mode is certified bit-identical *across collection modes* by
    :func:`verify_rollout_parity`, while pipelined mode promises a
    different, deliberately weaker contract — the same config and seed
    produce the same trajectory on every run (and on any worker count,
    because ineligible launches execute the identical schedule
    synchronously), **not** the strict trajectory (its rollouts use the
    pre-update, stale-by-one policy). ``build_trainer`` must return a
    freshly built, ready-to-train trainer each call (do any pretraining
    inside the factory); each trainer is closed after its run. Returns
    the reference run's metric dicts so callers can assert further
    properties (e.g. ``collect_lag``).
    """
    reference: Optional[List[dict]] = None
    for run in range(runs):
        with build_trainer() as trainer:
            metrics = [trainer.train_iteration() for _ in range(iterations)]
        if reference is None:
            reference = metrics
        elif metrics != reference:
            for step, (expected, got) in enumerate(zip(reference, metrics)):
                if expected != got:
                    raise AssertionError(
                        f"{label}: run {run} diverged from run 0 at iteration "
                        f"{step}: {got!r} != {expected!r}"
                    )
            raise AssertionError(
                f"{label}: run {run} diverged from run 0: {metrics!r} != {reference!r}"
            )
    return reference

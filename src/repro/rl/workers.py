"""Multi-process sharding for :class:`~repro.rl.vec.VecEnvPool`.

PR 1's block-diagonal pool drives every city with one ``policy.act`` per
timestep, but all env stepping still runs on one core. This module shards
the member envs of a pool across N worker processes, in two modes:

- **step-server mode** (PR 3): workers run env transitions only; the
  policy forward stays in the parent, optionally overlapped with the
  parent's per-step recording work via ``step_async`` / ``step_wait``.
  Speedup is bounded by the env-step fraction of collection time.
- **shard-parallel full rollouts** (this PR): the parent broadcasts a
  policy replica to every worker (:meth:`ShardedVecEnvPool.sync_policy`,
  version-stamped, delta-free ``state_dict`` sync through
  :mod:`repro.nn.serialization`), and
  :meth:`ShardedVecEnvPool.collect_rollouts` moves the entire
  act → step → record inner loop into the workers — each shard rolls its
  own envs with its own policy replica and writes finished trajectory
  arrays into a shared-memory block, so the *whole* collection
  parallelises, not just env stepping.

Process model
-------------
- **Sharding**: member envs are partitioned into contiguous shards,
  balanced by user count (ragged env sizes supported). Each worker
  process owns one shard wrapped in its own in-process
  :class:`~repro.rl.vec.VecEnvPool` — native block-diagonal steppers,
  per-env done masking and step budgets all behave exactly as in the
  single-process pool.
- **Startup**: the member envs (their full state, including internal RNG
  generators) are shipped to the workers as pickled construction specs —
  via fork inheritance or the spawn pickling path. The parent keeps only
  metadata (user counts, horizons, group ids).
- **Shared memory**: observations, actions, rewards and dones live in
  one ``multiprocessing.shared_memory`` block, double-buffered (two
  slots, alternating per step). Workers write their shard's rows in
  place; per-step pipe traffic is only the lightweight control message
  and the info dicts. Full rollouts use a second, time-major trajectory
  segment (states/prev_actions/actions/rewards/dones/values/log_probs
  ``[T, total_users, ...]`` plus bootstrap values ``[total_users]``),
  sized to the longest member budget and grown on demand; per-rollout
  pipe traffic is one command and one reply per worker.
- **Param mailbox**: ``sync_policy`` ships the policy object once
  (structure + weights) and thereafter only the serialized
  ``replica_state`` archive (full parameters every time — delta-free, so
  a worker can never be a partial update behind). A sync whose state is
  byte-identical to the last successful broadcast is skipped outright —
  no pipe traffic, same version stamp — so per-iteration ``sync_policy``
  calls only pay when parameters actually changed. Every real broadcast
  bumps a version stamp; every ``collect_rollouts`` command carries the
  stamp it expects, and a worker whose replica is stale answers with a
  distinct reply that raises :class:`StaleReplicaError` in the parent
  instead of silently rolling out old weights.

Determinism contract
--------------------
Sharding is semantics-preserving **by construction**, for any shard
layout and worker count, in both modes:

- each member env steps with its own internal RNG, and that RNG's state
  travels with the env into the worker — the same draws happen in the
  same order as in-process;
- policy sampling noise is drawn through
  :class:`~repro.rl.vec.BlockRNG`, whose per-env streams are pinned to
  env identity (slice order), not to shard placement. In step-server
  mode the parent draws; in shard-parallel mode each worker draws from
  exactly the generators of its own envs (shipped with the command,
  advanced states returned), so every env consumes the same stream
  either way;
- group context is computed per block via ``set_rollout_groups`` —
  on the parent's stacked batch in step-server mode, on the shard-local
  stacked batch in the workers — and a block's rows never mix with
  another env's;
- replica forwards equal parent forwards row for row: the nn engine's
  row-stable matmul contract makes a forward over a shard's rows
  bit-identical to the same rows of the full stacked forward, and the
  replica's weights are byte-equal to the parent's (npz round-trip).

Hence ``collect_segments_vec(ShardedVecEnvPool(envs, W), ...)`` *and*
``ShardedVecEnvPool(envs, W).collect_rollouts(...)`` are bit-identical
to ``collect_segments_vec(VecEnvPool(envs), ...)`` — and therefore to
the sequential per-env ``collect_segment`` loop — for every W. Enforced
by ``tests/rl/test_rollout_parity.py`` (one harness over all modes) and
re-verified inside ``benchmarks/perf_rollout.py`` before any timing is
reported.

Failure handling
----------------
Workers ignore SIGINT (the parent coordinates shutdown), crashes are
detected by liveness-checked pipe polls (a dead worker raises
:class:`WorkerCrashed` in the parent instead of hanging, including mid
param-broadcast), env exceptions are forwarded as
:class:`WorkerStepError` with their worker-side traceback, stale
replicas raise :class:`StaleReplicaError` — each closes the pool before
propagating — an oversized ``replica_state`` raises ``ValueError``
before anything is sent (the pool stays usable), and every
shared-memory segment is unlinked on ``close()``, on garbage collection
and on interpreter exit.
"""

from __future__ import annotations

import multiprocessing as mp
import signal
import time
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..envs.base import MultiUserEnv
from ..nn.serialization import state_from_bytes, state_to_bytes
from .buffer import RolloutSegment
from .policies import ActorCriticBase
from .vec import (
    RNGLike,
    BlockRNG,
    ShardableVecPool,
    VecEnvPool,
    assemble_segments,
    collect_segments_vec,
    split_rng,
    validate_pool_members,
)


class WorkerCrashed(RuntimeError):
    """A rollout worker process died instead of answering a command."""


class WorkerStepError(RuntimeError):
    """A rollout worker raised while executing a command (env bug etc.).

    Carries the worker-side traceback. The pool is closed before this
    propagates: after an env exception the worker's sub-pool state (and
    the step protocol) is unreliable, so the pool refuses further use.
    """


class StaleReplicaError(RuntimeError):
    """A worker's policy replica version differs from the one requested.

    Raised by :meth:`ShardedVecEnvPool.collect_rollouts` when a worker
    reports a replica version stamp other than the one the parent's last
    :meth:`~ShardedVecEnvPool.sync_policy` established — rolling out
    with silently-stale weights would corrupt training, so the pool is
    closed before this propagates.
    """


#: Worker-side errors that invalidate the pool (protocol desync or
#: unreliable worker state) — callers close before propagating them.
_POOL_ERRORS = (WorkerCrashed, WorkerStepError, StaleReplicaError)


def sharding_available(start_method: Optional[str] = None) -> bool:
    """Whether this platform can run :class:`ShardedVecEnvPool`."""
    methods = mp.get_all_start_methods()
    if start_method is not None:
        return start_method in methods
    return "fork" in methods or "spawn" in methods


def _default_start_method() -> str:
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def partition_contiguous(user_counts: Sequence[int], num_workers: int) -> List[slice]:
    """Contiguous env-index shards, balanced by cumulative user count.

    Every worker gets at least one env; the boundary after worker w sits
    where the cumulative user count first reaches the w+1-th W-quantile,
    so ragged env sizes spread evenly instead of by env count.
    """
    n = len(user_counts)
    num_workers = max(1, min(num_workers, n))
    cum = np.cumsum(np.asarray(user_counts, dtype=np.float64))
    total = float(cum[-1])
    bounds = [0]
    for w in range(num_workers - 1):
        cut = int(np.searchsorted(cum, total * (w + 1) / num_workers, side="left")) + 1
        lo = bounds[-1] + 1                      # at least one env per shard
        hi = n - (num_workers - 1 - w)           # leave one env per later shard
        bounds.append(min(max(cut, lo), hi))
    bounds.append(n)
    return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]


# ----------------------------------------------------------------------
# Shared-memory layout: one segment, double-buffered arrays.
# ----------------------------------------------------------------------
class _Layout:
    """Offsets of the double-buffered arrays inside one shm segment."""

    def __init__(self, num_users: int, obs_dim: int, act_dim: int):
        self.num_users = num_users
        self.obs_dim = obs_dim
        self.act_dim = act_dim
        f8 = np.dtype(np.float64).itemsize
        self.obs_off = 0
        self.act_off = self.obs_off + 2 * num_users * obs_dim * f8
        self.rew_off = self.act_off + 2 * num_users * act_dim * f8
        self.done_off = self.rew_off + 2 * num_users * f8
        self.size = self.done_off + 2 * num_users * 1  # bool, 1 byte

    def views(self, buf) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        u, od, ad = self.num_users, self.obs_dim, self.act_dim
        obs = np.ndarray((2, u, od), dtype=np.float64, buffer=buf, offset=self.obs_off)
        act = np.ndarray((2, u, ad), dtype=np.float64, buffer=buf, offset=self.act_off)
        rew = np.ndarray((2, u), dtype=np.float64, buffer=buf, offset=self.rew_off)
        done = np.ndarray((2, u), dtype=np.bool_, buffer=buf, offset=self.done_off)
        return obs, act, rew, done

    def spec(self) -> Tuple[int, int, int]:
        return (self.num_users, self.obs_dim, self.act_dim)


class _TrajLayout:
    """Offsets of the time-major trajectory arrays inside one shm segment.

    One ``[T, total_users, ...]`` array per
    :data:`repro.rl.vec.TRAJECTORY_FIELDS` entry plus the ``[total_users]``
    bootstrap values; each worker writes its shard's user rows for its
    envs' own step counts, the parent slices per-env segments back out.
    """

    def __init__(self, horizon: int, num_users: int, obs_dim: int, act_dim: int):
        self.horizon = horizon
        self.num_users = num_users
        self.obs_dim = obs_dim
        self.act_dim = act_dim
        f8 = np.dtype(np.float64).itemsize
        per_user = obs_dim + 2 * act_dim + 4  # states + prev/actions + 4 scalars
        self.size = (horizon * num_users * per_user + num_users) * f8

    def views(self, buf) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        t, u, od, ad = self.horizon, self.num_users, self.obs_dim, self.act_dim
        f8 = np.dtype(np.float64).itemsize
        offset = 0
        stacked: Dict[str, np.ndarray] = {}
        for field, dim in (
            ("states", od),
            ("prev_actions", ad),
            ("actions", ad),
            ("rewards", 0),
            ("dones", 0),
            ("values", 0),
            ("log_probs", 0),
        ):
            shape = (t, u, dim) if dim else (t, u)
            stacked[field] = np.ndarray(shape, dtype=np.float64, buffer=buf, offset=offset)
            offset += int(np.prod(shape)) * f8
        last_values = np.ndarray((u,), dtype=np.float64, buffer=buf, offset=offset)
        return stacked, last_values


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    Only the parent owns the segment's lifetime. Python < 3.13 registers
    every attach with the (fork-shared) resource tracker, which would
    race the parent's unlink at worker exit — suppress the registration
    instead of unregistering after the fact.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _worker_main(
    conn,
    shm_name: str,
    layout_spec: Tuple[int, int, int],
    rows: Tuple[int, int],
    envs: List[MultiUserEnv],
) -> None:
    """Worker loop: serve reset/step/replica/rollout/load/fetch/close.

    The shard is wrapped in an in-process :class:`VecEnvPool`, so done
    masking, step budgets and native batch steppers behave exactly as in
    the single-process pool. The ``replica`` command is the param
    mailbox (policy structure once, then version-stamped state archives)
    and ``rollout`` runs the full act → step → record loop for the shard
    through :func:`~repro.rl.vec.collect_segments_vec` — the same
    collector the parent would run, just over the shard's rows. SIGINT
    is ignored — on Ctrl-C the parent coordinates shutdown and reaps the
    workers.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    shm = _attach_untracked(shm_name)
    traj_shm: Optional[shared_memory.SharedMemory] = None
    traj_views: Optional[Tuple[Dict[str, np.ndarray], np.ndarray]] = None
    traj_name: Optional[str] = None
    replica: Optional[ActorCriticBase] = None
    replica_version = 0
    try:
        layout = _Layout(*layout_spec)
        obs, act, rew, done = layout.views(shm.buf)
        lo, hi = rows
        pool = VecEnvPool(envs)
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            kind = command[0]
            try:
                if kind == "reset":
                    pool.max_steps = command[1]
                    obs[0, lo:hi] = pool.reset()
                    conn.send(("ok",))
                elif kind == "step":
                    slot = command[1]
                    states, rewards, dones, info = pool.step(act[slot, lo:hi].copy())
                    obs[slot, lo:hi] = states
                    rew[slot, lo:hi] = rewards
                    done[slot, lo:hi] = dones
                    conn.send(
                        (
                            "ok",
                            info["per_env"],
                            pool.active_mask.tolist(),
                            pool.env_steps.tolist(),
                        )
                    )
                elif kind == "replica":
                    payload = command[1]
                    if payload["policy"] is not None:
                        replica = payload["policy"]
                    elif replica is None:
                        raise RuntimeError(
                            "received a state-only policy broadcast before any "
                            "policy structure"
                        )
                    else:
                        _load_replica_bytes(replica, payload["state"])
                    replica_version = payload["version"]
                    conn.send(("ok", replica_version))
                elif kind == "rollout":
                    payload = command[1]
                    if replica is None or payload["version"] != replica_version:
                        conn.send(("stale", replica_version, payload["version"]))
                        continue
                    name, capacity = payload["traj"]
                    if traj_name != name:
                        traj_views = None
                        if traj_shm is not None:
                            traj_shm.close()
                        traj_shm = _attach_untracked(name)
                        traj_name = name
                        traj_layout = _TrajLayout(capacity, *layout_spec)
                        traj_views = traj_layout.views(traj_shm.buf)
                    stacked, last_values = traj_views
                    rngs = payload["rngs"]
                    pool.max_steps = payload["max_steps"]
                    segments = collect_segments_vec(
                        pool,
                        replica,
                        rngs,
                        extras_from_info=payload["extras"],
                        overlap=False,
                    )
                    for segment, local in zip(segments, pool.slices):
                        block = slice(lo + local.start, lo + local.stop)
                        steps = segment.horizon
                        for field in stacked:
                            stacked[field][:steps, block] = getattr(segment, field)
                        last_values[block] = segment.last_values
                    conn.send(
                        (
                            "ok",
                            [segment.horizon for segment in segments],
                            [segment.extras for segment in segments],
                            [rng.bit_generator.state for rng in rngs],
                        )
                    )
                elif kind == "load":
                    pool = VecEnvPool(command[1])
                    conn.send(("ok",))
                elif kind == "fetch":
                    conn.send(("ok", pool.envs))
                elif kind == "close":
                    conn.send(("ok",))
                    break
                else:  # pragma: no cover - protocol bug
                    conn.send(("error", f"unknown command {kind!r}"))
            except Exception:
                try:
                    conn.send(("error", traceback.format_exc()))
                except (OSError, BrokenPipeError):  # parent already gone
                    break
    finally:
        obs = act = rew = done = traj_views = None
        for segment in (shm, traj_shm):
            if segment is None:
                continue
            try:
                segment.close()
            except BufferError:  # pragma: no cover - lingering views
                pass
        conn.close()


def _replica_state(policy: ActorCriticBase) -> Dict[str, np.ndarray]:
    """A policy's full replica state (params + extra buffers), flat."""
    if hasattr(policy, "replica_state"):
        return policy.replica_state()
    # plain Module: parameters only
    return {f"param.{key}": value for key, value in policy.state_dict().items()}


def _load_replica_bytes(replica: ActorCriticBase, payload: bytes) -> None:
    """Load a serialized replica-state archive into a worker's replica."""
    state = state_from_bytes(payload)
    if hasattr(replica, "load_replica_state"):
        replica.load_replica_state(state)
    else:
        replica.load_state_dict(
            {k[len("param."):]: v for k, v in state.items() if k.startswith("param.")}
        )


def _cleanup(procs, conns, shms) -> None:
    """Idempotent teardown shared by close(), GC and interpreter exit.

    ``shms`` is the pool's *mutable* segment list — the trajectory
    segment of full-rollout mode is allocated (and possibly regrown)
    after the finalizer is registered, so the finalizer holds the list,
    not a snapshot of it.
    """
    for conn in conns:
        try:
            conn.send(("close",))
        except (OSError, BrokenPipeError, ValueError):
            pass
    deadline = time.monotonic() + 2.0
    for proc in procs:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for shm in shms:
        try:
            shm.close()
        except BufferError:
            # Someone still holds a view into the segment; the memory is
            # reclaimed when the last view dies. Unlinking below still
            # removes the named segment (no leak in /dev/shm).
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class ShardedVecEnvPool(ShardableVecPool):
    """Member envs sharded across worker processes, one shm batch.

    Drop-in for :class:`~repro.rl.vec.VecEnvPool` everywhere the
    shardable-pool protocol is consumed (``collect_segments_vec``,
    ``evaluate_policy_vec``, ``evaluate_policy``); additionally exposes
    ``step_async`` / ``step_wait`` so the collector can overlap env
    stepping with its own per-step work, the shard-parallel full-rollout
    pair :meth:`sync_policy` / :meth:`collect_rollouts` (policy replicas
    act in the workers; see the module docstring), ``load_envs`` to
    reuse the worker processes for a fresh env set of identical layout
    (amortising process startup across training iterations), and
    ``fetch_member_envs`` to pull the advanced env states back into the
    parent (training loops that reuse env objects across iterations stay
    bit-identical to in-process collection).

    ``num_workers`` is clamped to the number of envs; 0/1 workers still
    run a (single) subprocess — use :class:`VecEnvPool` for the
    in-process path. ``max_param_bytes`` bounds the serialized policy
    state a single :meth:`sync_policy` broadcast may ship (a guard
    against accidentally pushing a giant model through the pipes every
    iteration). The pool is a context manager; ``close()`` is idempotent
    and also runs on GC and interpreter exit.
    """

    def __init__(
        self,
        envs: Sequence[MultiUserEnv],
        num_workers: int = 2,
        max_steps: Optional[int] = None,
        start_method: Optional[str] = None,
        max_param_bytes: int = 256 * 1024 * 1024,
    ):
        self.slices = validate_pool_members(envs)
        first = envs[0]
        method = start_method or _default_start_method()
        if not sharding_available(method):
            raise RuntimeError(f"start method {method!r} unavailable on this platform")

        self._user_counts = [env.num_users for env in envs]
        self.group_slices = self.slices
        self.num_users = int(self.slices[-1].stop)
        self.observation_space = first.observation_space
        self.action_space = first.action_space
        self.horizon = max(env.horizon for env in envs)
        self.group_id = [env.group_id for env in envs]
        self._horizons = [env.horizon for env in envs]
        self.max_steps = max_steps

        self._shards = partition_contiguous(self._user_counts, num_workers)
        self._layout = _Layout(self.num_users, first.observation_dim, first.action_dim)
        self._shm = shared_memory.SharedMemory(create=True, size=self._layout.size)
        self._obs, self._act, self._rew, self._done = self._layout.views(self._shm.buf)
        # Mutable segment list shared with the finalizer: the trajectory
        # segment joins it lazily on the first collect_rollouts().
        self._shm_segments: List[shared_memory.SharedMemory] = [self._shm]
        self._traj_shm: Optional[shared_memory.SharedMemory] = None
        self._traj_capacity = 0
        self._traj_stacked: Optional[Dict[str, np.ndarray]] = None
        self._traj_last: Optional[np.ndarray] = None
        self.max_param_bytes = int(max_param_bytes)
        self._replica_version = 0
        self._replica_signature: Optional[tuple] = None
        self._replica_cache: Optional[Dict[str, np.ndarray]] = None
        self._replica_broadcasts = 0

        ctx = mp.get_context(method)
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        try:
            for shard in self._shards:
                rows = (self.slices[shard.start].start, self.slices[shard.stop - 1].stop)
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        self._shm.name,
                        self._layout.spec(),
                        rows,
                        list(envs[shard]),
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except Exception:
            # A failed spawn (e.g. unpicklable envs under the spawn start
            # method) must not leak the segment or the workers already up.
            self._obs = self._act = self._rew = self._done = None
            _cleanup(self._procs, self._conns, self._shm_segments)
            raise

        self._active = np.zeros(len(envs), dtype=bool)
        self._steps = np.zeros(len(envs), dtype=np.int64)
        self._step_count = 0
        self._pending_slot: Optional[int] = None
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _cleanup, self._procs, self._conns, self._shm_segments
        )

    # ------------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self.slices)

    @property
    def num_workers(self) -> int:
        return len(self._procs)

    @property
    def shards(self) -> List[slice]:
        """Env-index shard of each worker (copy)."""
        return list(self._shards)

    @property
    def active_mask(self) -> np.ndarray:
        return self._active.copy()

    @property
    def env_steps(self) -> np.ndarray:
        return self._steps.copy()

    @property
    def all_done(self) -> bool:
        return not self._active.any()

    @property
    def shared_memory_name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")

    def _recv(self, worker: int):
        """Liveness-checked receive: a dead worker raises instead of hanging.

        Raises :class:`WorkerCrashed` (callers close the pool before
        propagating it) or :class:`WorkerStepError` with the worker-side
        traceback.
        """
        conn, proc = self._conns[worker], self._procs[worker]
        try:
            while not conn.poll(0.05):
                if not proc.is_alive():
                    raise WorkerCrashed(
                        f"rollout worker {worker} (pid {proc.pid}) died with "
                        f"exit code {proc.exitcode} before answering; the pool "
                        "has been closed and its shared memory released"
                    )
            message = conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerCrashed(
                f"rollout worker {worker} (pid {proc.pid}) closed its pipe "
                f"mid-command ({error!r}); the pool has been closed and its "
                "shared memory released"
            ) from None
        if message[0] == "error":
            raise WorkerStepError(
                f"rollout worker {worker} raised:\n{message[1]}"
            )
        if message[0] == "stale":
            raise StaleReplicaError(
                f"rollout worker {worker} holds policy replica version "
                f"{message[1]} but the parent requested {message[2]}; "
                "sync_policy() and the collect must not be interleaved with "
                "another broadcast — the pool has been closed"
            )
        return message

    def _send_all(self, commands: Sequence[Any]) -> None:
        """Send one command per worker; a broken pipe closes the pool."""
        for worker, (conn, command) in enumerate(zip(self._conns, commands)):
            try:
                conn.send(command)
            except (OSError, BrokenPipeError) as error:
                proc = self._procs[worker]
                self.close()
                raise WorkerCrashed(
                    f"rollout worker {worker} (pid {proc.pid}) rejected a "
                    f"command ({error!r}); the pool has been closed and its "
                    "shared memory released"
                ) from None

    def _broadcast(self, command) -> List[Any]:
        self._check_open()
        self._send_all([command] * len(self._conns))
        replies = []
        try:
            for worker in range(len(self._conns)):
                replies.append(self._recv(worker))
        except _POOL_ERRORS:
            self.close()
            raise
        return replies

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        self._broadcast(("reset", self.max_steps))
        self._active[:] = True
        self._steps[:] = 0
        self._step_count = 0
        self._pending_slot = None
        return self._obs[0].copy()

    def step_async(self, actions: np.ndarray) -> None:
        self._check_open()
        if self._pending_slot is not None:
            raise RuntimeError("step_wait() must drain the previous step_async()")
        actions = self._validate_actions(actions)
        slot = self._step_count % 2
        self._act[slot] = actions
        self._send_all([("step", slot)] * len(self._conns))
        self._pending_slot = slot
        self._step_count += 1

    def step_wait(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        """Collect the in-flight step. Returns *views* into the current
        slot buffers — valid until the second following ``step_async``
        (slots alternate per step); copy before keeping longer."""
        if self._pending_slot is None:
            raise RuntimeError("step_wait() without a pending step_async()")
        slot = self._pending_slot
        infos: List[Optional[Dict[str, Any]]] = [None] * self.num_envs
        try:
            for worker, shard in enumerate(self._shards):
                _, per_env, active, steps = self._recv(worker)
                infos[shard] = per_env
                self._active[shard] = active
                self._steps[shard] = steps
        except _POOL_ERRORS:
            # Either way the step protocol is desynchronised (later
            # workers' replies are still queued, the failing worker's
            # sub-pool state is unreliable) — tear the pool down rather
            # than leave it half-stepped.
            self.close()
            raise
        self._pending_slot = None
        info = {"per_env": infos, "active": self._active.copy()}
        return self._obs[slot], self._rew[slot], self._done[slot], info

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        self.step_async(actions)
        states, rewards, dones, info = self.step_wait()
        return states.copy(), rewards.copy(), dones.copy(), info

    # ------------------------------------------------------------------
    # shard-parallel full rollouts: replica sync + worker-side collection
    # ------------------------------------------------------------------
    @property
    def replica_version(self) -> int:
        """Version stamp of the last successful :meth:`sync_policy` (0 = none)."""
        return self._replica_version

    @property
    def replica_broadcasts(self) -> int:
        """How many :meth:`sync_policy` calls actually sent anything.

        An unchanged policy (same structure, byte-equal state arrays) is
        skipped entirely — the workers already hold these exact weights
        under the current version stamp — so training loops that call
        ``sync_policy`` every iteration pay for the archive only when
        parameters actually moved.
        """
        return self._replica_broadcasts

    def sync_policy(self, policy: ActorCriticBase) -> int:
        """Broadcast ``policy`` to every worker; returns the version stamp.

        The first broadcast (or any broadcast after the replica *shape*
        changed) ships the pickled policy object; subsequent broadcasts
        ship only the serialized ``replica_state`` archive — the full
        parameter set every time, so a replica can never be a partial
        delta behind the parent. A broadcast whose state arrays are
        byte-identical to the last successful one is **skipped
        entirely** (no pipe traffic, same version stamp returned): the
        workers' replicas are already exact, so re-sending would be pure
        overhead (see :attr:`replica_broadcasts`). Raises ``ValueError``
        before anything is sent when the archive exceeds
        ``max_param_bytes`` (the pool stays open and usable), and the
        usual pool errors (:class:`WorkerCrashed` /
        :class:`WorkerStepError`) when a worker dies or rejects the
        broadcast mid-way (the pool is closed first — no hang, shared
        memory unlinked).
        """
        self._check_open()
        state = _replica_state(policy)
        signature = tuple(sorted((key, value.shape) for key, value in state.items()))
        if (
            self._replica_version > 0
            and signature == self._replica_signature
            and self._replica_cache is not None
            and all(
                np.array_equal(value, self._replica_cache[key])
                for key, value in state.items()
            )
        ):
            return self._replica_version  # unchanged: nothing to re-send
        payload = state_to_bytes(state)
        if len(payload) > self.max_param_bytes:
            raise ValueError(
                f"policy replica state is {len(payload)} bytes, over this "
                f"pool's max_param_bytes={self.max_param_bytes}; raise the "
                "limit if broadcasting a model this large every iteration is "
                "intentional"
            )
        version = self._replica_version + 1
        if signature == self._replica_signature:
            command = ("replica", {"policy": None, "state": payload, "version": version})
        else:  # structure changed (or first sync): ship the object itself
            command = ("replica", {"policy": policy, "state": None, "version": version})
        self._broadcast(command)
        self._replica_version = version
        self._replica_signature = signature
        self._replica_cache = {
            key: np.array(value, copy=True) for key, value in state.items()
        }
        self._replica_broadcasts += 1
        return version

    def _ensure_traj(self, capacity: int) -> str:
        """Allocate (or grow) the shared trajectory segment; returns its name."""
        if self._traj_shm is None or capacity > self._traj_capacity:
            if self._traj_shm is not None:
                self._traj_stacked = self._traj_last = None
                stale = self._traj_shm
                self._shm_segments.remove(stale)
                try:
                    stale.close()
                except BufferError:  # pragma: no cover - lingering views
                    pass
                try:
                    stale.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            layout = _TrajLayout(capacity, *self._layout.spec())
            self._traj_shm = shared_memory.SharedMemory(create=True, size=layout.size)
            self._shm_segments.append(self._traj_shm)
            self._traj_capacity = capacity
            self._traj_stacked, self._traj_last = layout.views(self._traj_shm.buf)
        return self._traj_shm.name

    def _as_env_rngs(
        self, rng: RNGLike
    ) -> Tuple[List[np.random.Generator], Optional[List[np.random.Generator]]]:
        """Per-env generators plus the caller-owned objects to sync back.

        Mirrors :func:`repro.rl.vec._as_block_rng`: a single generator is
        split into per-env child streams (the children are transient, so
        nothing is synced back — exactly the vectorized-path semantics);
        an explicit sequence or a :class:`~repro.rl.vec.BlockRNG` hands
        over caller-owned generators whose advanced states are copied
        back after collection, preserving multi-episode stream
        continuity.
        """
        if isinstance(rng, BlockRNG):
            rngs = list(rng.rngs)
            owners: Optional[List[np.random.Generator]] = rngs
        elif isinstance(rng, np.random.Generator):
            rngs = split_rng(rng, self.num_envs)
            owners = None
        else:
            rngs = list(rng)
            owners = rngs
        if len(rngs) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} generators, got {len(rngs)}")
        return rngs, owners

    def collect_rollouts(
        self,
        rng: RNGLike,
        max_steps: Optional[int] = None,
        extras_from_info: Tuple[str, ...] = (),
    ) -> List[RolloutSegment]:
        """Run the full act → step → record loop inside every worker.

        Each worker rolls its shard with its policy replica (one
        :func:`~repro.rl.vec.collect_segments_vec` over the shard-local
        sub-pool), writes the finished trajectory arrays into the shared
        trajectory segment, and replies with per-env lengths, extras and
        advanced RNG states; the parent then cuts per-env
        :class:`~repro.rl.buffer.RolloutSegment` objects out of the
        shared arrays via :func:`~repro.rl.vec.assemble_segments`.
        Bit-identical to the step-server and in-process paths (module
        docstring); requires a prior :meth:`sync_policy`.
        """
        self._check_open()
        if self._pending_slot is not None:
            raise RuntimeError("collect_rollouts() during an in-flight step_async()")
        if self._replica_version == 0:
            raise RuntimeError(
                "collect_rollouts() needs a policy replica: call sync_policy() first"
            )
        if max_steps is None:
            max_steps = self.max_steps
        rngs, owners = self._as_env_rngs(rng)
        capacity = max(max_steps or horizon for horizon in self._horizons)
        traj_name = self._ensure_traj(capacity)
        commands = []
        for shard in self._shards:
            commands.append(
                (
                    "rollout",
                    {
                        "version": self._replica_version,
                        "traj": (traj_name, self._traj_capacity),
                        "max_steps": max_steps,
                        "extras": tuple(extras_from_info),
                        "rngs": rngs[shard.start : shard.stop],
                    },
                )
            )
        self._send_all(commands)
        lengths: List[Optional[int]] = [None] * self.num_envs
        extras_per_env: List[Optional[Dict[str, np.ndarray]]] = [None] * self.num_envs
        try:
            for worker, shard in enumerate(self._shards):
                _, shard_lengths, shard_extras, shard_states = self._recv(worker)
                for offset, env_index in enumerate(range(shard.start, shard.stop)):
                    lengths[env_index] = int(shard_lengths[offset])
                    extras_per_env[env_index] = shard_extras[offset]
                    if owners is not None:
                        owners[env_index].bit_generator.state = shard_states[offset]
        except _POOL_ERRORS:
            self.close()
            raise
        self._steps[:] = lengths
        self._active[:] = False
        last_values = [self._traj_last[block] for block in self.slices]
        segments = assemble_segments(
            self._traj_stacked,
            {},
            lengths,
            last_values,
            self.slices,
            self.group_id,
        )
        if extras_from_info:
            # Workers return extras already cut per env (the arrays their
            # shard-local collector produced); attach them directly — the
            # parent owns the unpickled copies, no restacking needed.
            for segment, extras in zip(segments, extras_per_env):
                segment.extras = {key: extras[key] for key in extras_from_info}
        return segments

    # ------------------------------------------------------------------
    def load_envs(self, envs: Sequence[MultiUserEnv]) -> None:
        """Replace the member envs, reusing the worker processes.

        The new envs must match the current layout exactly (same per-env
        user counts and dims) so the shared buffers and shard boundaries
        stay valid; each worker rebuilds its in-process sub-pool from the
        pickled replacements. Call :meth:`reset` afterwards as usual.
        """
        envs = list(envs)
        if [env.num_users for env in envs] != self._user_counts:
            raise ValueError(
                "load_envs needs the same per-env user counts as the current "
                f"pool ({self._user_counts})"
            )
        first = envs[0]
        if (
            first.observation_dim != self._layout.obs_dim
            or first.action_dim != self._layout.act_dim
        ):
            raise ValueError("load_envs needs matching observation/action dims")
        if len({id(env) for env in envs}) != len(envs):
            raise ValueError("load_envs members must be distinct objects")
        self._check_open()
        self._send_all([("load", list(envs[shard])) for shard in self._shards])
        try:
            for worker in range(len(self._conns)):
                self._recv(worker)
        except _POOL_ERRORS:
            self.close()
            raise
        self.group_id = [env.group_id for env in envs]
        self._horizons = [env.horizon for env in envs]
        self.horizon = max(self._horizons)
        self._active[:] = False

    def fetch_member_envs(self) -> List[MultiUserEnv]:
        """Pull the worker-side env objects (their advanced state) back.

        Training loops whose samplers hand out *shared* env objects rely
        on state continuity across iterations (RNG streams, user gaps);
        syncing the fetched state back into the parent's objects keeps
        sharded collection bit-identical to in-process collection over a
        whole training run.
        """
        replies = self._broadcast(("fetch",))
        fetched: List[MultiUserEnv] = []
        for reply in replies:
            fetched.extend(reply[1])
        return fetched

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and release every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        # Drop our buffer views so the segments' mmaps can actually close.
        self._obs = self._act = self._rew = self._done = None
        self._traj_stacked = self._traj_last = None
        self._finalizer.detach()
        _cleanup(self._procs, self._conns, self._shm_segments)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardedVecEnvPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def collect_segments_shard_parallel(
    pool: Union[ShardedVecEnvPool, Sequence[MultiUserEnv]],
    policy: ActorCriticBase,
    rng: RNGLike,
    num_workers: int = 2,
    max_steps: Optional[int] = None,
    extras_from_info: Tuple[str, ...] = (),
) -> List[RolloutSegment]:
    """One-shot shard-parallel collection: sync the policy, roll, assemble.

    The full-rollout counterpart of
    :func:`~repro.rl.vec.collect_segments_vec`: given a prebuilt
    :class:`ShardedVecEnvPool` it broadcasts ``policy`` and collects in
    the workers (reuse the pool across iterations to amortise process
    startup and the structure broadcast); given a plain env sequence it
    builds a throwaway pool, collects once and closes it.
    """
    if isinstance(pool, ShardedVecEnvPool):
        pool.sync_policy(policy)
        return pool.collect_rollouts(
            rng, max_steps=max_steps, extras_from_info=extras_from_info
        )
    with ShardedVecEnvPool(pool, num_workers=num_workers) as owned:
        owned.sync_policy(policy)
        return owned.collect_rollouts(
            rng, max_steps=max_steps, extras_from_info=extras_from_info
        )

"""Multi-process sharding for :class:`~repro.rl.vec.VecEnvPool`.

PR 1's block-diagonal pool drives every city with one ``policy.act`` per
timestep, but all env stepping still runs on one core. This module shards
the member envs of a pool across N worker processes so env transitions
run in parallel with each other — and, in the overlapped mode of
:func:`~repro.rl.vec.collect_segments_vec`, in parallel with the parent's
per-step recording work.

Process model
-------------
- **Sharding**: member envs are partitioned into contiguous shards,
  balanced by user count (ragged env sizes supported). Each worker
  process owns one shard wrapped in its own in-process
  :class:`~repro.rl.vec.VecEnvPool` — native block-diagonal steppers,
  per-env done masking and step budgets all behave exactly as in the
  single-process pool.
- **Startup**: the member envs (their full state, including internal RNG
  generators) are shipped to the workers as pickled construction specs —
  via fork inheritance or the spawn pickling path. The parent keeps only
  metadata (user counts, horizons, group ids).
- **Shared memory**: observations, actions, rewards and dones live in
  one ``multiprocessing.shared_memory`` block, double-buffered (two
  slots, alternating per step). Workers write their shard's rows in
  place; per-step pipe traffic is only the lightweight control message
  and the info dicts.
- **Overlap**: ``step_async`` writes the stacked actions into the
  current slot and signals all workers; ``step_wait`` blocks for their
  replies and returns *views* into that slot. Because consecutive steps
  alternate slots, a view from step t stays valid while step t+1 is in
  flight — the window the overlapped collector uses to copy step t's
  observations into the trajectory while the envs already advance.

Determinism contract
--------------------
Sharding is semantics-preserving **by construction**, for any shard
layout and worker count:

- each member env steps with its own internal RNG, and that RNG's state
  travels with the env into the worker — the same draws happen in the
  same order as in-process;
- policy sampling noise is drawn in the parent through
  :class:`~repro.rl.vec.BlockRNG`, whose per-env streams are pinned to
  env identity (slice order), not to shard placement;
- group context is computed per block via ``set_rollout_groups`` on the
  parent's stacked batch, which is byte-identical to the in-process
  stacked batch.

Hence ``collect_segments_vec(ShardedVecEnvPool(envs, W), ...)`` is
bit-identical to ``collect_segments_vec(VecEnvPool(envs), ...)`` — and
therefore to the sequential per-env ``collect_segment`` loop — for every
W. Enforced by ``tests/rl/test_workers.py`` and re-verified inside
``benchmarks/perf_rollout.py`` before any timing is reported.

Failure handling
----------------
Workers ignore SIGINT (the parent coordinates shutdown), crashes are
detected by liveness-checked pipe polls (a dead worker raises
:class:`WorkerCrashed` in the parent instead of hanging), env exceptions
are forwarded as :class:`WorkerStepError` with their worker-side
traceback — both close the pool before propagating — and the
shared-memory segment is unlinked on ``close()``, on garbage collection
and on interpreter exit.
"""

from __future__ import annotations

import multiprocessing as mp
import signal
import time
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..envs.base import MultiUserEnv
from .vec import ShardableVecPool, VecEnvPool, validate_pool_members


class WorkerCrashed(RuntimeError):
    """A rollout worker process died instead of answering a command."""


class WorkerStepError(RuntimeError):
    """A rollout worker raised while executing a command (env bug etc.).

    Carries the worker-side traceback. The pool is closed before this
    propagates: after an env exception the worker's sub-pool state (and
    the step protocol) is unreliable, so the pool refuses further use.
    """


def sharding_available(start_method: Optional[str] = None) -> bool:
    """Whether this platform can run :class:`ShardedVecEnvPool`."""
    methods = mp.get_all_start_methods()
    if start_method is not None:
        return start_method in methods
    return "fork" in methods or "spawn" in methods


def _default_start_method() -> str:
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def partition_contiguous(user_counts: Sequence[int], num_workers: int) -> List[slice]:
    """Contiguous env-index shards, balanced by cumulative user count.

    Every worker gets at least one env; the boundary after worker w sits
    where the cumulative user count first reaches the w+1-th W-quantile,
    so ragged env sizes spread evenly instead of by env count.
    """
    n = len(user_counts)
    num_workers = max(1, min(num_workers, n))
    cum = np.cumsum(np.asarray(user_counts, dtype=np.float64))
    total = float(cum[-1])
    bounds = [0]
    for w in range(num_workers - 1):
        cut = int(np.searchsorted(cum, total * (w + 1) / num_workers, side="left")) + 1
        lo = bounds[-1] + 1                      # at least one env per shard
        hi = n - (num_workers - 1 - w)           # leave one env per later shard
        bounds.append(min(max(cut, lo), hi))
    bounds.append(n)
    return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]


# ----------------------------------------------------------------------
# Shared-memory layout: one segment, double-buffered arrays.
# ----------------------------------------------------------------------
class _Layout:
    """Offsets of the double-buffered arrays inside one shm segment."""

    def __init__(self, num_users: int, obs_dim: int, act_dim: int):
        self.num_users = num_users
        self.obs_dim = obs_dim
        self.act_dim = act_dim
        f8 = np.dtype(np.float64).itemsize
        self.obs_off = 0
        self.act_off = self.obs_off + 2 * num_users * obs_dim * f8
        self.rew_off = self.act_off + 2 * num_users * act_dim * f8
        self.done_off = self.rew_off + 2 * num_users * f8
        self.size = self.done_off + 2 * num_users * 1  # bool, 1 byte

    def views(self, buf) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        u, od, ad = self.num_users, self.obs_dim, self.act_dim
        obs = np.ndarray((2, u, od), dtype=np.float64, buffer=buf, offset=self.obs_off)
        act = np.ndarray((2, u, ad), dtype=np.float64, buffer=buf, offset=self.act_off)
        rew = np.ndarray((2, u), dtype=np.float64, buffer=buf, offset=self.rew_off)
        done = np.ndarray((2, u), dtype=np.bool_, buffer=buf, offset=self.done_off)
        return obs, act, rew, done

    def spec(self) -> Tuple[int, int, int]:
        return (self.num_users, self.obs_dim, self.act_dim)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    Only the parent owns the segment's lifetime. Python < 3.13 registers
    every attach with the (fork-shared) resource tracker, which would
    race the parent's unlink at worker exit — suppress the registration
    instead of unregistering after the fact.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _worker_main(
    conn,
    shm_name: str,
    layout_spec: Tuple[int, int, int],
    rows: Tuple[int, int],
    envs: List[MultiUserEnv],
) -> None:
    """Worker loop: serve reset/step/load/fetch/close over the pipe.

    The shard is wrapped in an in-process :class:`VecEnvPool`, so done
    masking, step budgets and native batch steppers behave exactly as in
    the single-process pool. SIGINT is ignored — on Ctrl-C the parent
    coordinates shutdown and reaps the workers.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    shm = _attach_untracked(shm_name)
    try:
        layout = _Layout(*layout_spec)
        obs, act, rew, done = layout.views(shm.buf)
        lo, hi = rows
        pool = VecEnvPool(envs)
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            kind = command[0]
            try:
                if kind == "reset":
                    pool.max_steps = command[1]
                    obs[0, lo:hi] = pool.reset()
                    conn.send(("ok",))
                elif kind == "step":
                    slot = command[1]
                    states, rewards, dones, info = pool.step(act[slot, lo:hi].copy())
                    obs[slot, lo:hi] = states
                    rew[slot, lo:hi] = rewards
                    done[slot, lo:hi] = dones
                    conn.send(
                        (
                            "ok",
                            info["per_env"],
                            pool.active_mask.tolist(),
                            pool.env_steps.tolist(),
                        )
                    )
                elif kind == "load":
                    pool = VecEnvPool(command[1])
                    conn.send(("ok",))
                elif kind == "fetch":
                    conn.send(("ok", pool.envs))
                elif kind == "close":
                    conn.send(("ok",))
                    break
                else:  # pragma: no cover - protocol bug
                    conn.send(("error", f"unknown command {kind!r}"))
            except Exception:
                try:
                    conn.send(("error", traceback.format_exc()))
                except (OSError, BrokenPipeError):  # parent already gone
                    break
    finally:
        obs = act = rew = done = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - lingering views
            pass
        conn.close()


def _cleanup(procs, conns, shm) -> None:
    """Idempotent teardown shared by close(), GC and interpreter exit."""
    for conn in conns:
        try:
            conn.send(("close",))
        except (OSError, BrokenPipeError, ValueError):
            pass
    deadline = time.monotonic() + 2.0
    for proc in procs:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    try:
        shm.close()
    except BufferError:
        # Someone still holds a view into the segment; the memory is
        # reclaimed when the last view dies. Unlinking below still
        # removes the named segment (no leak in /dev/shm).
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class ShardedVecEnvPool(ShardableVecPool):
    """Member envs sharded across worker processes, one shm batch.

    Drop-in for :class:`~repro.rl.vec.VecEnvPool` everywhere the
    shardable-pool protocol is consumed (``collect_segments_vec``,
    ``evaluate_policy_vec``, ``evaluate_policy``); additionally exposes
    ``step_async`` / ``step_wait`` so the collector can overlap env
    stepping with its own per-step work, ``load_envs`` to reuse the
    worker processes for a fresh env set of identical layout (amortising
    process startup across training iterations), and
    ``fetch_member_envs`` to pull the advanced env states back into the
    parent (training loops that reuse env objects across iterations stay
    bit-identical to in-process collection).

    ``num_workers`` is clamped to the number of envs; 0/1 workers still
    run a (single) subprocess — use :class:`VecEnvPool` for the
    in-process path. The pool is a context manager; ``close()`` is
    idempotent and also runs on GC and interpreter exit.
    """

    def __init__(
        self,
        envs: Sequence[MultiUserEnv],
        num_workers: int = 2,
        max_steps: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        self.slices = validate_pool_members(envs)
        first = envs[0]
        method = start_method or _default_start_method()
        if not sharding_available(method):
            raise RuntimeError(f"start method {method!r} unavailable on this platform")

        self._user_counts = [env.num_users for env in envs]
        self.group_slices = self.slices
        self.num_users = int(self.slices[-1].stop)
        self.observation_space = first.observation_space
        self.action_space = first.action_space
        self.horizon = max(env.horizon for env in envs)
        self.group_id = [env.group_id for env in envs]
        self._horizons = [env.horizon for env in envs]
        self.max_steps = max_steps

        self._shards = partition_contiguous(self._user_counts, num_workers)
        self._layout = _Layout(self.num_users, first.observation_dim, first.action_dim)
        self._shm = shared_memory.SharedMemory(create=True, size=self._layout.size)
        self._obs, self._act, self._rew, self._done = self._layout.views(self._shm.buf)

        ctx = mp.get_context(method)
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        try:
            for shard in self._shards:
                rows = (self.slices[shard.start].start, self.slices[shard.stop - 1].stop)
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        self._shm.name,
                        self._layout.spec(),
                        rows,
                        list(envs[shard]),
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except Exception:
            # A failed spawn (e.g. unpicklable envs under the spawn start
            # method) must not leak the segment or the workers already up.
            self._obs = self._act = self._rew = self._done = None
            _cleanup(self._procs, self._conns, self._shm)
            raise

        self._active = np.zeros(len(envs), dtype=bool)
        self._steps = np.zeros(len(envs), dtype=np.int64)
        self._step_count = 0
        self._pending_slot: Optional[int] = None
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _cleanup, self._procs, self._conns, self._shm
        )

    # ------------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self.slices)

    @property
    def num_workers(self) -> int:
        return len(self._procs)

    @property
    def shards(self) -> List[slice]:
        """Env-index shard of each worker (copy)."""
        return list(self._shards)

    @property
    def active_mask(self) -> np.ndarray:
        return self._active.copy()

    @property
    def env_steps(self) -> np.ndarray:
        return self._steps.copy()

    @property
    def all_done(self) -> bool:
        return not self._active.any()

    @property
    def shared_memory_name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")

    def _recv(self, worker: int):
        """Liveness-checked receive: a dead worker raises instead of hanging.

        Raises :class:`WorkerCrashed` (callers close the pool before
        propagating it) or :class:`WorkerStepError` with the worker-side
        traceback.
        """
        conn, proc = self._conns[worker], self._procs[worker]
        try:
            while not conn.poll(0.05):
                if not proc.is_alive():
                    raise WorkerCrashed(
                        f"rollout worker {worker} (pid {proc.pid}) died with "
                        f"exit code {proc.exitcode} before answering; the pool "
                        "has been closed and its shared memory released"
                    )
            message = conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerCrashed(
                f"rollout worker {worker} (pid {proc.pid}) closed its pipe "
                f"mid-command ({error!r}); the pool has been closed and its "
                "shared memory released"
            ) from None
        if message[0] == "error":
            raise WorkerStepError(
                f"rollout worker {worker} raised:\n{message[1]}"
            )
        return message

    def _send_all(self, commands: Sequence[Any]) -> None:
        """Send one command per worker; a broken pipe closes the pool."""
        for worker, (conn, command) in enumerate(zip(self._conns, commands)):
            try:
                conn.send(command)
            except (OSError, BrokenPipeError) as error:
                proc = self._procs[worker]
                self.close()
                raise WorkerCrashed(
                    f"rollout worker {worker} (pid {proc.pid}) rejected a "
                    f"command ({error!r}); the pool has been closed and its "
                    "shared memory released"
                ) from None

    def _broadcast(self, command) -> List[Any]:
        self._check_open()
        self._send_all([command] * len(self._conns))
        replies = []
        try:
            for worker in range(len(self._conns)):
                replies.append(self._recv(worker))
        except (WorkerCrashed, WorkerStepError):
            self.close()
            raise
        return replies

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        self._broadcast(("reset", self.max_steps))
        self._active[:] = True
        self._steps[:] = 0
        self._step_count = 0
        self._pending_slot = None
        return self._obs[0].copy()

    def step_async(self, actions: np.ndarray) -> None:
        self._check_open()
        if self._pending_slot is not None:
            raise RuntimeError("step_wait() must drain the previous step_async()")
        actions = self._validate_actions(actions)
        slot = self._step_count % 2
        self._act[slot] = actions
        self._send_all([("step", slot)] * len(self._conns))
        self._pending_slot = slot
        self._step_count += 1

    def step_wait(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        """Collect the in-flight step. Returns *views* into the current
        slot buffers — valid until the second following ``step_async``
        (slots alternate per step); copy before keeping longer."""
        if self._pending_slot is None:
            raise RuntimeError("step_wait() without a pending step_async()")
        slot = self._pending_slot
        infos: List[Optional[Dict[str, Any]]] = [None] * self.num_envs
        try:
            for worker, shard in enumerate(self._shards):
                _, per_env, active, steps = self._recv(worker)
                infos[shard] = per_env
                self._active[shard] = active
                self._steps[shard] = steps
        except (WorkerCrashed, WorkerStepError):
            # Either way the step protocol is desynchronised (later
            # workers' replies are still queued, the failing worker's
            # sub-pool state is unreliable) — tear the pool down rather
            # than leave it half-stepped.
            self.close()
            raise
        self._pending_slot = None
        info = {"per_env": infos, "active": self._active.copy()}
        return self._obs[slot], self._rew[slot], self._done[slot], info

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        self.step_async(actions)
        states, rewards, dones, info = self.step_wait()
        return states.copy(), rewards.copy(), dones.copy(), info

    # ------------------------------------------------------------------
    def load_envs(self, envs: Sequence[MultiUserEnv]) -> None:
        """Replace the member envs, reusing the worker processes.

        The new envs must match the current layout exactly (same per-env
        user counts and dims) so the shared buffers and shard boundaries
        stay valid; each worker rebuilds its in-process sub-pool from the
        pickled replacements. Call :meth:`reset` afterwards as usual.
        """
        envs = list(envs)
        if [env.num_users for env in envs] != self._user_counts:
            raise ValueError(
                "load_envs needs the same per-env user counts as the current "
                f"pool ({self._user_counts})"
            )
        first = envs[0]
        if (
            first.observation_dim != self._layout.obs_dim
            or first.action_dim != self._layout.act_dim
        ):
            raise ValueError("load_envs needs matching observation/action dims")
        if len({id(env) for env in envs}) != len(envs):
            raise ValueError("load_envs members must be distinct objects")
        self._check_open()
        self._send_all([("load", list(envs[shard])) for shard in self._shards])
        try:
            for worker in range(len(self._conns)):
                self._recv(worker)
        except (WorkerCrashed, WorkerStepError):
            self.close()
            raise
        self.group_id = [env.group_id for env in envs]
        self._horizons = [env.horizon for env in envs]
        self.horizon = max(self._horizons)
        self._active[:] = False

    def fetch_member_envs(self) -> List[MultiUserEnv]:
        """Pull the worker-side env objects (their advanced state) back.

        Training loops whose samplers hand out *shared* env objects rely
        on state continuity across iterations (RNG streams, user gaps);
        syncing the fetched state back into the parent's objects keeps
        sharded collection bit-identical to in-process collection over a
        whole training run.
        """
        replies = self._broadcast(("fetch",))
        fetched: List[MultiUserEnv] = []
        for reply in replies:
            fetched.extend(reply[1])
        return fetched

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and release the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        # Drop our buffer views so the segment's mmap can actually close.
        self._obs = self._act = self._rew = self._done = None
        self._finalizer.detach()
        _cleanup(self._procs, self._conns, self._shm)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardedVecEnvPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

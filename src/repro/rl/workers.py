"""Multi-process sharding for :class:`~repro.rl.vec.VecEnvPool`.

PR 1's block-diagonal pool drives every city with one ``policy.act`` per
timestep, but all env stepping still runs on one core. This module shards
the member envs of a pool across N worker processes, in two modes:

- **step-server mode** (PR 3): workers run env transitions only; the
  policy forward stays in the parent, optionally overlapped with the
  parent's per-step recording work via ``step_async`` / ``step_wait``.
  Speedup is bounded by the env-step fraction of collection time.
- **shard-parallel full rollouts** (PR 4): the parent broadcasts a
  policy replica to every worker (:meth:`ShardedVecEnvPool.sync_policy`,
  version-stamped, delta-free ``state_dict`` sync through
  :mod:`repro.nn.serialization`), and
  :meth:`ShardedVecEnvPool.collect_rollouts` moves the entire
  act → step → record inner loop into the workers — each shard rolls its
  own envs with its own policy replica and writes finished trajectory
  arrays into a shared-memory block, so the *whole* collection
  parallelises, not just env stepping.

Process model
-------------
- **Sharding**: member envs are partitioned into contiguous shards,
  balanced by user count (ragged env sizes supported). Each worker
  process owns one shard wrapped in its own in-process
  :class:`~repro.rl.vec.VecEnvPool` — native block-diagonal steppers,
  per-env done masking and step budgets all behave exactly as in the
  single-process pool.
- **Startup**: the member envs (their full state, including internal RNG
  generators) are shipped to the workers as pickled construction specs —
  via fork inheritance or the spawn pickling path. The parent keeps only
  metadata (user counts, horizons, group ids).
- **Shared memory**: observations, actions, rewards and dones live in
  one ``multiprocessing.shared_memory`` block, double-buffered (two
  slots, alternating per step). Workers write their shard's rows in
  place; per-step pipe traffic is only the lightweight control message
  and the info dicts. Full rollouts use a second, time-major trajectory
  segment (states/prev_actions/actions/rewards/dones/values/log_probs
  ``[T, total_users, ...]`` plus bootstrap values ``[total_users]``),
  sized to the longest member budget and grown on demand; per-rollout
  pipe traffic is one command and one reply per worker.
- **Param mailbox**: ``sync_policy`` ships the policy object once
  (structure + weights) and thereafter only the serialized
  ``replica_state`` archive (full parameters every time — delta-free, so
  a worker can never be a partial update behind). A sync whose state is
  byte-identical to the last successful broadcast is skipped outright —
  no pipe traffic, same version stamp — so per-iteration ``sync_policy``
  calls only pay when parameters actually changed. Every real broadcast
  bumps a version stamp; every ``collect_rollouts`` command carries the
  stamp it expects, and a worker whose replica is stale answers with a
  distinct reply that raises :class:`StaleReplicaError` in the parent
  instead of silently rolling out old weights.

Determinism contract
--------------------
Sharding is semantics-preserving **by construction**, for any shard
layout and worker count, in both modes:

- each member env steps with its own internal RNG, and that RNG's state
  travels with the env into the worker — the same draws happen in the
  same order as in-process;
- policy sampling noise is drawn through
  :class:`~repro.rl.vec.BlockRNG`, whose per-env streams are pinned to
  env identity (slice order), not to shard placement. In step-server
  mode the parent draws; in shard-parallel mode each worker draws from
  exactly the generators of its own envs (shipped with the command,
  advanced states returned), so every env consumes the same stream
  either way;
- group context is computed per block via ``set_rollout_groups`` —
  on the parent's stacked batch in step-server mode, on the shard-local
  stacked batch in the workers — and a block's rows never mix with
  another env's;
- replica forwards equal parent forwards row for row: the nn engine's
  row-stable matmul contract makes a forward over a shard's rows
  bit-identical to the same rows of the full stacked forward, and the
  replica's weights are byte-equal to the parent's (npz round-trip).

Hence ``collect_segments_vec(ShardedVecEnvPool(envs, W), ...)`` *and*
``ShardedVecEnvPool(envs, W).collect_rollouts(...)`` are bit-identical
to ``collect_segments_vec(VecEnvPool(envs), ...)`` — and therefore to
the sequential per-env ``collect_segment`` loop — for every W. Enforced
by ``tests/rl/test_rollout_parity.py`` (one harness over all modes) and
re-verified inside ``benchmarks/perf_rollout.py`` before any timing is
reported.

Failure handling and supervision (this PR)
------------------------------------------
Workers ignore SIGINT (the parent coordinates shutdown; the parent also
masks SIGINT around each ``Process.start()`` so a Ctrl-C cannot land in
the bootstrap window before the worker installs its own handler).
Crashes are detected by liveness-checked pipe polls; hangs by per-op
deadlines. Without a :class:`FaultPolicy` (the default) the legacy
contract holds: a dead worker raises :class:`WorkerCrashed`, a stale
replica :class:`StaleReplicaError`, an env exception
:class:`WorkerStepError` — each closes the pool before propagating — an
oversized ``replica_state`` raises ``ValueError`` before anything is
sent (the pool stays usable), and every shared-memory segment is
unlinked on ``close()``, on garbage collection and on interpreter exit
(shutdown escalates ``join`` → ``terminate()`` → ``kill()``, so even a
worker that ignores SIGTERM cannot leak its segment).

With a :class:`FaultPolicy`, the pool becomes **self-healing** with an
exactly-once, bit-identical recovery guarantee:

- Every IPC wait carries a per-op deadline; a worker that exceeds it is
  SIGKILLed and treated as crashed (:class:`WorkerTimeout`).
- A crashed / hung / stale worker is **respawned** (bounded retries with
  exponential backoff) from the parent's authoritative copy of its shard
  state: the last synced env snapshot, an operation journal of every
  reset/step since that snapshot, and the current policy-replica archive
  — replaying the journal re-derives the worker's exact pre-failure env
  and RNG state (every transition is deterministic given env state), and
  the interrupted command is re-issued. Side effects are applied in the
  parent only after *all* workers answered (RNG owner states, journal
  appends, snapshot refreshes), so a failed operation leaves no partial
  state and its re-execution produces bit-identical results — enforced
  by ``tests/rl/test_chaos.py`` through :mod:`repro.rl.parity` under
  injected faults (:mod:`repro.rl.chaos`).
- When a worker's restart budget is exhausted the pool **degrades
  gracefully** to an in-process :class:`~repro.rl.vec.VecEnvPool`
  rebuilt from the same snapshots + journal (a ``RuntimeWarning`` is
  emitted, ``pool.degraded`` flips True): the interrupted operation and
  all subsequent ones run in-process with the archived policy replica —
  still bit-identical, just no longer parallel. Training survives.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import signal
import threading
import time
import traceback
import warnings
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..envs.base import MultiUserEnv
from ..nn.serialization import state_from_bytes, state_to_bytes
from ..obs import PHASE_SECONDS_BUCKETS, MetricsRegistry
from .buffer import RolloutSegment
from .chaos import ChaosSchedule, apply_fault
from .policies import ActorCriticBase
from .vec import (
    RNGLike,
    BlockRNG,
    ShardableVecPool,
    VecEnvPool,
    assemble_segments,
    collect_segments_vec,
    split_rng,
    validate_pool_members,
)
from .evaluate import _replica_eval


class WorkerCrashed(RuntimeError):
    """A rollout worker process died instead of answering a command."""


class WorkerTimeout(WorkerCrashed):
    """A rollout worker exceeded its per-op deadline and was SIGKILLed.

    Only raised under a :class:`FaultPolicy` with a finite deadline for
    the operation; subclasses :class:`WorkerCrashed` because from the
    parent's point of view a hung-and-killed worker *is* a crashed one
    (same recovery path, same legacy close-and-raise path).
    """


class WorkerStepError(RuntimeError):
    """A rollout worker raised while executing a command (env bug etc.).

    Carries the worker-side traceback. The pool is closed before this
    propagates: after an env exception the worker's sub-pool state (and
    the step protocol) is unreliable, so the pool refuses further use.
    Never recovered even under a :class:`FaultPolicy` — the replayed
    deterministic transition would raise identically, so respawning
    would loop for nothing.
    """


class StaleReplicaError(RuntimeError):
    """A worker's policy replica version differs from the one requested.

    Raised by :meth:`ShardedVecEnvPool.collect_rollouts` when a worker
    reports a replica version stamp other than the one the parent's last
    :meth:`~ShardedVecEnvPool.sync_policy` established — rolling out
    with silently-stale weights would corrupt training. Without a
    :class:`FaultPolicy` the pool is closed before this propagates; with
    one, the worker is respawned and re-shipped the current replica.
    """


#: Worker-side errors that invalidate the pool (protocol desync or
#: unreliable worker state) — callers close before propagating them.
_POOL_ERRORS = (WorkerCrashed, WorkerStepError, StaleReplicaError)

#: Errors the fault policy can recover by respawning the worker.
_RECOVERABLE_ERRORS = (WorkerCrashed, StaleReplicaError)


@dataclass(frozen=True)
class FaultPolicy:
    """Supervision knobs for :class:`ShardedVecEnvPool`.

    ``max_restarts`` bounds respawns *per worker* over the pool's
    lifetime; each retry sleeps ``backoff * 2**(attempt-1)`` seconds
    (capped at ``max_backoff``). The per-op deadlines bound every IPC
    wait — ``step_deadline`` covers reset/step exchanges,
    ``broadcast_deadline`` the replica/load/fetch/snapshot broadcasts,
    ``collect_deadline`` the full worker-side rollout — and ``None``
    disables hang detection for that class (liveness polling still
    catches outright deaths). ``graceful_join`` is the SIGTERM grace a
    reaped worker gets before SIGKILL escalation.
    """

    max_restarts: int = 2
    backoff: float = 0.05
    max_backoff: float = 2.0
    step_deadline: Optional[float] = 60.0
    broadcast_deadline: Optional[float] = 60.0
    collect_deadline: Optional[float] = 300.0
    graceful_join: float = 1.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be >= 0")

    def deadline_for(self, op: str) -> Optional[float]:
        """The IPC deadline (seconds) governing one protocol operation."""
        if op in ("step", "reset"):
            return self.step_deadline
        if op in ("rollout", "evaluate"):
            return self.collect_deadline
        return self.broadcast_deadline

    def backoff_for(self, attempt: int) -> float:
        """Exponential backoff before the ``attempt``-th respawn (1-based)."""
        return min(self.backoff * (2.0 ** max(attempt - 1, 0)), self.max_backoff)


class _Degraded(Exception):
    """Internal control flow: the pool just degraded to in-process mode.

    Raised by ``_degrade`` after the in-process replacement pool is
    built; public operations catch it and re-execute the interrupted
    operation through the inner pool. Never escapes the pool.
    """

    def __init__(self, cause: BaseException):
        super().__init__(str(cause))
        self.cause = cause


def sharding_available(start_method: Optional[str] = None) -> bool:
    """Whether this platform can run :class:`ShardedVecEnvPool`."""
    methods = mp.get_all_start_methods()
    if start_method is not None:
        return start_method in methods
    return "fork" in methods or "spawn" in methods


def _default_start_method() -> str:
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def partition_contiguous(user_counts: Sequence[int], num_workers: int) -> List[slice]:
    """Contiguous env-index shards, balanced by cumulative user count.

    Every worker gets at least one env; the boundary after worker w sits
    where the cumulative user count first reaches the w+1-th W-quantile,
    so ragged env sizes spread evenly instead of by env count.
    """
    n = len(user_counts)
    num_workers = max(1, min(num_workers, n))
    cum = np.cumsum(np.asarray(user_counts, dtype=np.float64))
    total = float(cum[-1])
    bounds = [0]
    for w in range(num_workers - 1):
        cut = int(np.searchsorted(cum, total * (w + 1) / num_workers, side="left")) + 1
        lo = bounds[-1] + 1                      # at least one env per shard
        hi = n - (num_workers - 1 - w)           # leave one env per later shard
        bounds.append(min(max(cut, lo), hi))
    bounds.append(n)
    return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]


# ----------------------------------------------------------------------
# Shared-memory layout: one segment, double-buffered arrays.
# ----------------------------------------------------------------------
class _Layout:
    """Offsets of the double-buffered arrays inside one shm segment."""

    def __init__(self, num_users: int, obs_dim: int, act_dim: int):
        self.num_users = num_users
        self.obs_dim = obs_dim
        self.act_dim = act_dim
        f8 = np.dtype(np.float64).itemsize
        self.obs_off = 0
        self.act_off = self.obs_off + 2 * num_users * obs_dim * f8
        self.rew_off = self.act_off + 2 * num_users * act_dim * f8
        self.done_off = self.rew_off + 2 * num_users * f8
        self.size = self.done_off + 2 * num_users * 1  # bool, 1 byte

    def views(self, buf) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        u, od, ad = self.num_users, self.obs_dim, self.act_dim
        obs = np.ndarray((2, u, od), dtype=np.float64, buffer=buf, offset=self.obs_off)
        act = np.ndarray((2, u, ad), dtype=np.float64, buffer=buf, offset=self.act_off)
        rew = np.ndarray((2, u), dtype=np.float64, buffer=buf, offset=self.rew_off)
        done = np.ndarray((2, u), dtype=np.bool_, buffer=buf, offset=self.done_off)
        return obs, act, rew, done

    def spec(self) -> Tuple[int, int, int]:
        return (self.num_users, self.obs_dim, self.act_dim)


class _TrajLayout:
    """Offsets of the time-major trajectory arrays inside one shm segment.

    One ``[T, total_users, ...]`` array per
    :data:`repro.rl.vec.TRAJECTORY_FIELDS` entry plus the ``[total_users]``
    bootstrap values; each worker writes its shard's user rows for its
    envs' own step counts, the parent slices per-env segments back out.
    """

    def __init__(self, horizon: int, num_users: int, obs_dim: int, act_dim: int):
        self.horizon = horizon
        self.num_users = num_users
        self.obs_dim = obs_dim
        self.act_dim = act_dim
        f8 = np.dtype(np.float64).itemsize
        per_user = obs_dim + 2 * act_dim + 4  # states + prev/actions + 4 scalars
        self.size = (horizon * num_users * per_user + num_users) * f8

    def views(self, buf) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        t, u, od, ad = self.horizon, self.num_users, self.obs_dim, self.act_dim
        f8 = np.dtype(np.float64).itemsize
        offset = 0
        stacked: Dict[str, np.ndarray] = {}
        for field, dim in (
            ("states", od),
            ("prev_actions", ad),
            ("actions", ad),
            ("rewards", 0),
            ("dones", 0),
            ("values", 0),
            ("log_probs", 0),
        ):
            shape = (t, u, dim) if dim else (t, u)
            stacked[field] = np.ndarray(shape, dtype=np.float64, buffer=buf, offset=offset)
            offset += int(np.prod(shape)) * f8
        last_values = np.ndarray((u,), dtype=np.float64, buffer=buf, offset=offset)
        return stacked, last_values


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    Only the parent owns the segment's lifetime. Python < 3.13 registers
    every attach with the (fork-shared) resource tracker, which would
    race the parent's unlink at worker exit — suppress the registration
    instead of unregistering after the fact.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _worker_main(
    conn,
    shm_name: str,
    layout_spec: Tuple[int, int, int],
    rows: Tuple[int, int],
    envs: List[MultiUserEnv],
    chaos: Optional[ChaosSchedule] = None,
) -> None:
    """Worker loop: serve reset/step/replica/rollout/evaluate/load/fetch/snapshot/close.

    The shard is wrapped in an in-process :class:`VecEnvPool`, so done
    masking, step budgets and native batch steppers behave exactly as in
    the single-process pool. The ``replica`` command is the param
    mailbox (policy structure once, then version-stamped state archives;
    a respawned worker gets structure *and* state in one command) and
    ``rollout`` runs the full act → step → record loop for the shard
    through :func:`~repro.rl.vec.collect_segments_vec` — the same
    collector the parent would run, just over the shard's rows.
    ``snapshot`` returns the shard's envs as pickle bytes (the parent's
    recovery baseline). SIGINT is ignored — on Ctrl-C the parent
    coordinates shutdown and reaps the workers. ``chaos`` is the
    deterministic fault-injection schedule (tests and the chaos bench
    only; see :mod:`repro.rl.chaos`).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if chaos is not None and chaos.ignore_sigterm:
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    shm = _attach_untracked(shm_name)
    traj_shm: Optional[shared_memory.SharedMemory] = None
    traj_views: Optional[Tuple[Dict[str, np.ndarray], np.ndarray]] = None
    traj_name: Optional[str] = None
    replica: Optional[ActorCriticBase] = None
    replica_version = 0
    try:
        layout = _Layout(*layout_spec)
        obs, act, rew, done = layout.views(shm.buf)
        lo, hi = rows
        pool = VecEnvPool(envs)
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            kind = command[0]
            suppress_reply = False
            corrupt_stamp = False
            if chaos is not None:
                spec = chaos.match(kind, "receive")
                if spec is not None:
                    effect = apply_fault(spec)
                    if effect == "drop_reply":
                        suppress_reply = True
                    elif effect == "corrupt_stamp":
                        corrupt_stamp = True
            try:
                reply: Optional[tuple] = None
                stop = False
                if kind == "reset":
                    pool.max_steps = command[1]
                    obs[0, lo:hi] = pool.reset()
                    reply = ("ok",)
                elif kind == "step":
                    slot = command[1]
                    states, rewards, dones, info = pool.step(act[slot, lo:hi].copy())
                    obs[slot, lo:hi] = states
                    rew[slot, lo:hi] = rewards
                    done[slot, lo:hi] = dones
                    reply = (
                        "ok",
                        info["per_env"],
                        pool.active_mask.tolist(),
                        pool.env_steps.tolist(),
                    )
                elif kind == "replica":
                    payload = command[1]
                    if payload["policy"] is not None:
                        replica = payload["policy"]
                        if payload.get("state") is not None:
                            # respawn re-ship: frozen structure + current
                            # weights in one command
                            _load_replica_bytes(replica, payload["state"])
                    elif replica is None:
                        raise RuntimeError(
                            "received a state-only policy broadcast before any "
                            "policy structure"
                        )
                    else:
                        _load_replica_bytes(replica, payload["state"])
                    replica_version = payload["version"]
                    reply = ("ok", replica_version)
                elif kind == "rollout":
                    payload = command[1]
                    if replica is None or payload["version"] != replica_version:
                        reply = ("stale", replica_version, payload["version"])
                    else:
                        name, capacity = payload["traj"]
                        if traj_name != name:
                            traj_views = None
                            if traj_shm is not None:
                                traj_shm.close()
                            traj_shm = _attach_untracked(name)
                            traj_name = name
                            traj_layout = _TrajLayout(capacity, *layout_spec)
                            traj_views = traj_layout.views(traj_shm.buf)
                        stacked, last_values = traj_views
                        rngs = payload["rngs"]
                        pool.max_steps = payload["max_steps"]
                        segments = collect_segments_vec(
                            pool,
                            replica,
                            rngs,
                            extras_from_info=payload["extras"],
                            overlap=False,
                        )
                        for segment, local in zip(segments, pool.slices):
                            block = slice(lo + local.start, lo + local.stop)
                            steps = segment.horizon
                            for field in stacked:
                                stacked[field][:steps, block] = getattr(segment, field)
                            last_values[block] = segment.last_values
                        env_blob = (
                            pickle.dumps(pool.envs)
                            if payload.get("return_envs")
                            else None
                        )
                        reply = (
                            "ok",
                            [segment.horizon for segment in segments],
                            [segment.extras for segment in segments],
                            [rng.bit_generator.state for rng in rngs],
                            env_blob,
                        )
                elif kind == "evaluate":
                    payload = command[1]
                    if replica is None or payload["version"] != replica_version:
                        reply = ("stale", replica_version, payload["version"])
                    else:
                        rngs = payload["rngs"]
                        totals = _replica_eval(
                            pool,
                            replica,
                            rngs,
                            episodes=payload["episodes"],
                            gamma=payload["gamma"],
                            deterministic=payload["deterministic"],
                            max_steps=payload["max_steps"],
                        )
                        env_blob = (
                            pickle.dumps(pool.envs)
                            if payload.get("return_envs")
                            else None
                        )
                        reply = (
                            "ok",
                            totals,
                            [rng.bit_generator.state for rng in rngs],
                            env_blob,
                        )
                elif kind == "load":
                    pool = VecEnvPool(command[1])
                    reply = ("ok",)
                elif kind == "fetch":
                    reply = ("ok", pool.envs)
                elif kind == "snapshot":
                    reply = ("ok", pickle.dumps(pool.envs))
                elif kind == "close":
                    reply = ("ok",)
                    stop = True
                else:  # pragma: no cover - protocol bug
                    reply = ("error", f"unknown command {kind!r}")
                if chaos is not None:
                    spec = chaos.match(kind, "reply")
                    if spec is not None:
                        effect = apply_fault(spec)
                        if effect == "drop_reply":
                            suppress_reply = True
                        elif effect == "corrupt_stamp":
                            corrupt_stamp = True
                if not suppress_reply:
                    conn.send(reply)
                if corrupt_stamp:
                    # The acknowledged broadcast was applied, but the local
                    # stamp is now wrong: the next rollout answers stale.
                    replica_version += 7919
                if stop:
                    break
            except Exception:
                try:
                    conn.send(("error", traceback.format_exc()))
                except (OSError, BrokenPipeError):  # parent already gone
                    break
    finally:
        obs = act = rew = done = traj_views = None
        for segment in (shm, traj_shm):
            if segment is None:
                continue
            try:
                segment.close()
            except BufferError:  # pragma: no cover - lingering views
                pass
        conn.close()


def _replica_state(policy: ActorCriticBase) -> Dict[str, np.ndarray]:
    """A policy's full replica state (params + extra buffers), flat."""
    if hasattr(policy, "replica_state"):
        return policy.replica_state()
    # plain Module: parameters only
    return {f"param.{key}": value for key, value in policy.state_dict().items()}


def _load_replica_bytes(replica: ActorCriticBase, payload: bytes) -> None:
    """Load a serialized replica-state archive into a worker's replica."""
    state = state_from_bytes(payload)
    if hasattr(replica, "load_replica_state"):
        replica.load_replica_state(state)
    else:
        replica.load_state_dict(
            {k[len("param."):]: v for k, v in state.items() if k.startswith("param.")}
        )


def _cleanup(procs, conns, shms) -> None:
    """Idempotent teardown shared by close(), GC and interpreter exit.

    ``shms`` is the pool's *mutable* segment list — the trajectory
    segment of full-rollout mode is allocated (and possibly regrown)
    after the finalizer is registered, so the finalizer holds the list,
    not a snapshot of it. Shutdown escalates: a polite ``close`` command
    and a join grace first, then ``terminate()`` (SIGTERM), then
    ``kill()`` (SIGKILL) — a worker that ignores SIGTERM (wedged signal
    handler, buggy env C extension) still dies and its shared memory is
    still unlinked.
    """
    for conn in conns:
        try:
            conn.send(("close",))
        except (OSError, BrokenPipeError, ValueError):
            pass
    deadline = time.monotonic() + 2.0
    for proc in procs:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
    for proc in procs:
        if proc.is_alive():  # ignored SIGTERM: escalate to SIGKILL
            proc.kill()
            proc.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for shm in shms:
        try:
            shm.close()
        except BufferError:
            # Someone still holds a view into the segment; the memory is
            # reclaimed when the last view dies. Unlinking below still
            # removes the named segment (no leak in /dev/shm).
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class ShardedVecEnvPool(ShardableVecPool):
    """Member envs sharded across worker processes, one shm batch.

    Drop-in for :class:`~repro.rl.vec.VecEnvPool` everywhere the
    shardable-pool protocol is consumed (``collect_segments_vec``,
    ``evaluate_policy_vec``, ``evaluate_policy``); additionally exposes
    ``step_async`` / ``step_wait`` so the collector can overlap env
    stepping with its own per-step work, the shard-parallel full-rollout
    pair :meth:`sync_policy` / :meth:`collect_rollouts` (policy replicas
    act in the workers; see the module docstring), ``load_envs`` to
    reuse the worker processes for a fresh env set of identical layout
    (amortising process startup across training iterations), and
    ``fetch_member_envs`` to pull the advanced env states back into the
    parent (training loops that reuse env objects across iterations stay
    bit-identical to in-process collection).

    ``num_workers`` is clamped to the number of envs; 0/1 workers still
    run a (single) subprocess — use :class:`VecEnvPool` for the
    in-process path. ``max_param_bytes`` bounds the serialized policy
    state a single :meth:`sync_policy` broadcast may ship (a guard
    against accidentally pushing a giant model through the pipes every
    iteration). ``fault_policy`` turns on worker supervision: deadline
    enforcement, automatic respawn with bit-identical state recovery,
    and graceful degradation to an in-process pool when the restart
    budget runs out (module docstring, *Failure handling*). ``chaos``
    injects deterministic faults into the workers — testing and the
    chaos bench only. The pool is a context manager; ``close()`` is
    idempotent and also runs on GC and interpreter exit.
    """

    def __init__(
        self,
        envs: Sequence[MultiUserEnv],
        num_workers: int = 2,
        max_steps: Optional[int] = None,
        start_method: Optional[str] = None,
        max_param_bytes: int = 256 * 1024 * 1024,
        fault_policy: Optional[FaultPolicy] = None,
        chaos: Optional[ChaosSchedule] = None,
    ):
        self.slices = validate_pool_members(envs)
        first = envs[0]
        method = start_method or _default_start_method()
        if not sharding_available(method):
            raise RuntimeError(f"start method {method!r} unavailable on this platform")

        self._user_counts = [env.num_users for env in envs]
        self.group_slices = self.slices
        self.num_users = int(self.slices[-1].stop)
        self.observation_space = first.observation_space
        self.action_space = first.action_space
        self.horizon = max(env.horizon for env in envs)
        self.group_id = [env.group_id for env in envs]
        self._horizons = [env.horizon for env in envs]
        self.max_steps = max_steps

        self._shards = partition_contiguous(self._user_counts, num_workers)
        self._shard_rows = [
            (self.slices[shard.start].start, self.slices[shard.stop - 1].stop)
            for shard in self._shards
        ]
        self._layout = _Layout(self.num_users, first.observation_dim, first.action_dim)
        self._shm = shared_memory.SharedMemory(create=True, size=self._layout.size)
        self._obs, self._act, self._rew, self._done = self._layout.views(self._shm.buf)
        # Mutable segment list shared with the finalizer: the trajectory
        # segment joins it lazily on the first collect_rollouts().
        self._shm_segments: List[shared_memory.SharedMemory] = [self._shm]
        self._traj_shm: Optional[shared_memory.SharedMemory] = None
        self._traj_capacity = 0
        self._traj_stacked: Optional[Dict[str, np.ndarray]] = None
        self._traj_last: Optional[np.ndarray] = None
        self.max_param_bytes = int(max_param_bytes)
        self._replica_version = 0
        self._replica_signature: Optional[tuple] = None
        self._replica_cache: Optional[Dict[str, np.ndarray]] = None
        self._replica_broadcasts = 0

        # Supervision / recovery state. Snapshots hold the authoritative
        # pickled env state per shard; the journal records every
        # reset/step applied since (appended only after the op succeeded
        # on *all* workers), so snapshot + journal replay re-derives any
        # worker's exact current state. Replica struct/payload re-ship
        # the policy to respawned workers; pending step bookkeeping lets
        # an interrupted step be replayed to the byte.
        self._fault = fault_policy
        self._chaos = chaos
        self._restarts = [0] * len(self._shards)
        self._metrics: Optional[MetricsRegistry] = None
        self._journal: List[Tuple[str, Any]] = []
        self._snapshots: Optional[List[bytes]] = None
        self._replica_struct: Optional[bytes] = None
        self._replica_payload: Optional[bytes] = None
        self._pending_actions: Optional[np.ndarray] = None
        self._step_send_failed: Dict[int, BaseException] = {}
        self._inner: Optional[VecEnvPool] = None
        self._degraded_replica: Optional[ActorCriticBase] = None
        if fault_policy is not None:
            self._snapshots = [
                pickle.dumps(list(envs[shard])) for shard in self._shards
            ]

        self._ctx = mp.get_context(method)
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        try:
            for index, shard in enumerate(self._shards):
                self._spawn_worker(index, list(envs[shard]), fresh=True)
        except Exception:
            # A failed spawn (e.g. unpicklable envs under the spawn start
            # method) must not leak the segment or the workers already up.
            self._obs = self._act = self._rew = self._done = None
            _cleanup(self._procs, self._conns, self._shm_segments)
            raise

        self._active = np.zeros(len(envs), dtype=bool)
        self._steps = np.zeros(len(envs), dtype=np.int64)
        self._step_count = 0
        self._pending_slot: Optional[int] = None
        self._collect_pending: Optional[Dict[str, Any]] = None
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _cleanup, self._procs, self._conns, self._shm_segments
        )

    # ------------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self.slices)

    @property
    def num_workers(self) -> int:
        return len(self._procs)

    @property
    def shards(self) -> List[slice]:
        """Env-index shard of each worker (copy)."""
        return list(self._shards)

    @property
    def active_mask(self) -> np.ndarray:
        if self._inner is not None:
            return self._inner.active_mask
        return self._active.copy()

    @property
    def env_steps(self) -> np.ndarray:
        if self._inner is not None:
            return self._inner.env_steps
        return self._steps.copy()

    @property
    def all_done(self) -> bool:
        if self._inner is not None:
            return self._inner.all_done
        return not self._active.any()

    @property
    def shared_memory_name(self) -> str:
        return self._shm.name

    @property
    def degraded(self) -> bool:
        """True once the restart budget ran out and the pool went in-process."""
        return self._inner is not None

    @property
    def restart_counts(self) -> List[int]:
        """Per-worker respawn counts (copy; index = original worker slot)."""
        return list(self._restarts)

    @property
    def collect_pending(self) -> bool:
        """True while a :meth:`collect_rollouts_async` awaits its wait."""
        return self._collect_pending is not None

    def set_metrics(self, registry: MetricsRegistry) -> None:
        """Attach a metrics registry (purely additive; idempotent).

        Registers per-shard timing histograms plus the supervision
        counters (:class:`~repro.rl.workers.FaultPolicy` respawns and
        the degradation gauge). Observation points only read wall-clock
        and existing state — attaching a registry can never perturb the
        bit-parity contracts.
        """
        self._metrics = registry
        self._m_step_wait = registry.histogram(
            "rollout_step_wait_seconds",
            "parent-side wait for one worker's step reply",
            ("shard",),
        )
        self._m_collect_wait = registry.histogram(
            "rollout_collect_seconds",
            "parent-side wait for one worker's full-rollout reply",
            ("shard",),
            buckets=PHASE_SECONDS_BUCKETS,
        )
        self._m_respawns = registry.counter(
            "rollout_worker_respawns_total",
            "supervised worker respawns (crash/hang recovery)",
            ("shard",),
        )
        self._m_degraded = registry.gauge(
            "rollout_pool_degraded",
            "1 once the restart budget ran out and the pool went in-process",
        )
        self._m_degraded.set(1.0 if self._inner is not None else 0.0)

    # ------------------------------------------------------------------
    # process management: spawn / reap / supervised exchange
    # ------------------------------------------------------------------
    def _spawn_worker(self, index: int, envs: List[MultiUserEnv], fresh: bool) -> None:
        """Start worker ``index`` over ``envs`` (append on first spawn).

        SIGINT is masked in the parent (main thread only) around
        ``Process.start()`` so a Ctrl-C cannot land in the forked child
        before ``_worker_main`` installs its own SIG_IGN — without this
        a Ctrl-C during pool construction races N KeyboardInterrupts
        against the shm cleanup. Respawns get the chaos schedule again
        only when it is marked ``persistent``.
        """
        worker_chaos: Optional[ChaosSchedule] = None
        if self._chaos is not None and (fresh or self._chaos.persistent):
            worker_chaos = self._chaos.for_worker(index)
        parent_conn, child_conn = self._ctx.Pipe()
        previous_handler = None
        in_main_thread = threading.current_thread() is threading.main_thread()
        if in_main_thread:
            previous_handler = signal.signal(signal.SIGINT, signal.SIG_IGN)
        try:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self._shm.name,
                    self._layout.spec(),
                    self._shard_rows[index],
                    envs,
                    worker_chaos,
                ),
                daemon=True,
            )
            proc.start()
        finally:
            if in_main_thread:
                signal.signal(signal.SIGINT, previous_handler)
        child_conn.close()
        if index == len(self._procs):
            self._procs.append(proc)
            self._conns.append(parent_conn)
        else:
            self._procs[index] = proc
            self._conns[index] = parent_conn

    def _reap_worker(self, index: int) -> None:
        """Force worker ``index`` down: SIGTERM, grace, then SIGKILL."""
        proc = self._procs[index]
        try:
            self._conns[index].close()
        except OSError:
            pass
        grace = self._fault.graceful_join if self._fault is not None else 1.0
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=grace)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)

    def _deadline_for(self, op: str) -> Optional[float]:
        if self._fault is None:
            return None
        return self._fault.deadline_for(op)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")

    def _check_no_collect(self, op: str) -> None:
        """Fence: the workers are busy rolling an async collect.

        Every command that would interleave pipe traffic with the
        in-flight rollout replies (or mutate state the rollout is
        reading) must wait for :meth:`collect_rollouts_wait` first.
        """
        if self._collect_pending is not None:
            raise RuntimeError(
                f"{op} during an in-flight collect_rollouts_async(); call "
                "collect_rollouts_wait() first"
            )

    def _recv(self, worker: int, deadline: Optional[float] = None, op: str = "command"):
        """Liveness- and deadline-checked receive.

        A dead worker raises :class:`WorkerCrashed` instead of hanging;
        a worker that blows through ``deadline`` seconds is SIGKILLed
        and raises :class:`WorkerTimeout` (a hung worker cannot be
        trusted to honour SIGTERM). Also surfaces
        :class:`WorkerStepError` (worker-side traceback) and
        :class:`StaleReplicaError` replies.
        """
        conn, proc = self._conns[worker], self._procs[worker]
        limit = None if deadline is None else time.monotonic() + deadline
        try:
            while not conn.poll(0.05):
                if not proc.is_alive():
                    raise WorkerCrashed(
                        f"rollout worker {worker} (pid {proc.pid}) died with "
                        f"exit code {proc.exitcode} before answering; the pool "
                        "has been closed and its shared memory released"
                    )
                if limit is not None and time.monotonic() > limit:
                    proc.kill()
                    proc.join(timeout=5.0)
                    raise WorkerTimeout(
                        f"rollout worker {worker} (pid {proc.pid}) exceeded "
                        f"the {deadline:.3g}s {op} deadline and was SIGKILLed"
                    )
            message = conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerCrashed(
                f"rollout worker {worker} (pid {proc.pid}) closed its pipe "
                f"mid-command ({error!r}); the pool has been closed and its "
                "shared memory released"
            ) from None
        if message[0] == "error":
            raise WorkerStepError(
                f"rollout worker {worker} raised:\n{message[1]}"
            )
        if message[0] == "stale":
            raise StaleReplicaError(
                f"rollout worker {worker} holds policy replica version "
                f"{message[1]} but the parent requested {message[2]}; "
                "sync_policy() and the collect must not be interleaved with "
                "another broadcast — the pool has been closed"
            )
        return message

    def _send_commands(self, commands: Sequence[Any], op: str) -> Dict[int, BaseException]:
        """Send one command per worker.

        Without a fault policy a broken pipe closes the pool and raises
        (legacy contract); with one, the failure is recorded and handed
        to the receive phase, which recovers the worker and re-issues
        the command.
        """
        failed: Dict[int, BaseException] = {}
        for worker, (conn, command) in enumerate(zip(self._conns, commands)):
            try:
                conn.send(command)
            except (OSError, BrokenPipeError) as error:
                proc = self._procs[worker]
                crash = WorkerCrashed(
                    f"rollout worker {worker} (pid {proc.pid}) rejected a "
                    f"command ({error!r}); the pool has been closed and its "
                    "shared memory released"
                )
                if self._fault is None:
                    self.close()
                    raise crash from None
                failed[worker] = crash
        return failed

    def _gather(
        self,
        commands: Sequence[Any],
        op: str,
        failed: Optional[Dict[int, BaseException]] = None,
    ) -> List[Any]:
        """Collect one reply per worker, recovering failures when allowed.

        Raises the usual pool errors (closing first) without a fault
        policy; with one, recoverable failures respawn the worker and
        re-issue its command, and budget exhaustion raises
        :class:`_Degraded` after the in-process fallback is built.
        """
        failed = dict(failed or {})
        replies: List[Any] = [None] * len(commands)
        deadline = self._deadline_for(op)
        for worker in range(len(commands)):
            if worker in failed:
                replies[worker] = self._recover(worker, commands[worker], op, failed.pop(worker))
                continue
            try:
                replies[worker] = self._recv(worker, deadline=deadline, op=op)
            except _RECOVERABLE_ERRORS as error:
                if self._fault is None:
                    self.close()
                    raise
                replies[worker] = self._recover(worker, commands[worker], op, error)
            except WorkerStepError:
                self.close()
                raise
        return replies

    def _exchange(self, commands: Sequence[Any], op: str) -> List[Any]:
        """One full supervised command round: send all, gather all."""
        self._check_open()
        failed = self._send_commands(commands, op)
        return self._gather(commands, op, failed)

    def _recover(self, worker: int, command: Any, op: str, error: BaseException):
        """Respawn a failed worker, replay its state, re-issue its command.

        Bounded by ``FaultPolicy.max_restarts`` (per worker) with
        exponential backoff between attempts; exhaustion degrades the
        whole pool to in-process execution (raises :class:`_Degraded`).
        Returns the re-issued command's reply.
        """
        assert self._fault is not None
        while True:
            self._restarts[worker] += 1
            attempt = self._restarts[worker]
            if attempt > self._fault.max_restarts:
                self._degrade(error)
            delay = self._fault.backoff_for(attempt)
            if delay > 0:
                time.sleep(delay)
            try:
                self._respawn(worker)
                self._conns[worker].send(command)
                return self._recv(worker, deadline=self._deadline_for(op), op=op)
            except _RECOVERABLE_ERRORS as retry_error:
                error = retry_error
            except (OSError, BrokenPipeError) as retry_error:
                error = WorkerCrashed(
                    f"rollout worker {worker} rejected the re-issued command "
                    f"({retry_error!r})"
                )
            except WorkerStepError:
                self.close()
                raise

    def _respawn(self, worker: int) -> None:
        """Rebuild worker ``worker`` bit-identically from parent state.

        Reaps the old process, spawns a fresh one from the last synced
        env snapshot, replays the journal (every reset/step since that
        snapshot — deterministic transitions re-derive the exact env and
        RNG state, including the double-buffer slot parity), restores
        the pending step's action rows, and re-ships the current policy
        replica (structure + state in one command).
        """
        assert self._snapshots is not None
        if self._metrics is not None:
            self._m_respawns.labels(str(worker)).inc()
        self._reap_worker(worker)
        envs = pickle.loads(self._snapshots[worker])
        self._spawn_worker(worker, envs, fresh=False)
        lo, hi = self._shard_rows[worker]
        conn = self._conns[worker]
        step_deadline = self._deadline_for("step")
        broadcast_deadline = self._deadline_for("replica")
        slot_counter = 0
        for kind, payload in self._journal:
            if kind == "reset":
                conn.send(("reset", payload))
                self._recv(worker, deadline=step_deadline, op="reset")
                slot_counter = 0
            else:  # "step": payload is the full validated action matrix
                slot = slot_counter % 2
                self._act[slot, lo:hi] = payload[lo:hi]
                conn.send(("step", slot))
                self._recv(worker, deadline=step_deadline, op="step")
                slot_counter += 1
        if self._pending_slot is not None and self._pending_actions is not None:
            # Journal replay may have clobbered the in-flight step's
            # action rows for this shard; restore them before re-issue.
            self._act[self._pending_slot, lo:hi] = self._pending_actions[lo:hi]
        if self._replica_version > 0 and self._replica_struct is not None:
            conn.send(
                (
                    "replica",
                    {
                        "policy": pickle.loads(self._replica_struct),
                        "state": self._replica_payload,
                        "version": self._replica_version,
                    },
                )
            )
            self._recv(worker, deadline=broadcast_deadline, op="replica")

    def _degrade(self, error: BaseException) -> None:
        """Swap every worker for one in-process pool; raise :class:`_Degraded`.

        All shards are rebuilt from their snapshots + journal in the
        parent (no cooperation from possibly-dead workers needed), the
        worker processes and shared memory are torn down, and subsequent
        operations run through the inner :class:`VecEnvPool` — same
        bits, no parallelism.
        """
        member_envs: List[MultiUserEnv] = []
        assert self._snapshots is not None
        for blob in self._snapshots:
            member_envs.extend(pickle.loads(blob))
        for worker in range(len(self._procs)):
            self._reap_worker(worker)
        inner = VecEnvPool(member_envs, max_steps=self.max_steps)
        for kind, payload in self._journal:
            if kind == "reset":
                inner.max_steps = payload
                inner.reset()
            else:
                inner.step(payload)
        # Release the worker-mode machinery: drop views first so the shm
        # mmaps can close, then unlink; empty the lists in place so the
        # GC finalizer (which holds them) becomes a no-op.
        self._obs = self._act = self._rew = self._done = None
        self._traj_stacked = self._traj_last = None
        self._traj_shm = None
        for shm in list(self._shm_segments):
            try:
                shm.close()
            except BufferError:  # pragma: no cover - lingering views
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._shm_segments.clear()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._conns.clear()
        self._journal.clear()
        self._inner = inner
        self._degraded_replica = None
        if self._metrics is not None:
            self._m_degraded.set(1.0)
        warnings.warn(
            f"rollout worker restart budget exhausted "
            f"(max_restarts={self._fault.max_restarts} per worker): degrading "
            f"to in-process collection for the rest of this pool's life. "
            f"Last failure: {error}",
            RuntimeWarning,
            stacklevel=4,
        )
        raise _Degraded(error)

    def _materialize_replica(self) -> ActorCriticBase:
        """The archived policy replica, rebuilt for in-process rollouts."""
        if self._degraded_replica is None:
            if self._replica_struct is None:
                raise RuntimeError(
                    "no policy replica archived: sync_policy() has not run"
                )
            replica = pickle.loads(self._replica_struct)
            if self._replica_payload is not None:
                _load_replica_bytes(replica, self._replica_payload)
            self._degraded_replica = replica
        return self._degraded_replica

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        self._check_open()
        self._check_no_collect("reset()")
        if self._inner is not None:
            self._inner.max_steps = self.max_steps
            self._pending_slot = None
            self._pending_actions = None
            self._step_count = 0
            return self._inner.reset()
        if self._fault is not None and self._journal:
            # Refresh the recovery baseline at the episode boundary: the
            # journal would otherwise grow for the pool's whole life.
            try:
                replies = self._exchange(
                    [("snapshot",)] * self.num_workers, op="snapshot"
                )
            except _Degraded:
                return self.reset()
            self._snapshots = [reply[1] for reply in replies]
            self._journal.clear()
        try:
            self._exchange([("reset", self.max_steps)] * self.num_workers, op="reset")
        except _Degraded:
            return self.reset()
        self._active[:] = True
        self._steps[:] = 0
        self._step_count = 0
        self._pending_slot = None
        self._pending_actions = None
        if self._fault is not None:
            self._journal.append(("reset", self.max_steps))
        return self._obs[0].copy()

    def step_async(self, actions: np.ndarray) -> None:
        self._check_open()
        self._check_no_collect("step_async()")
        if self._pending_slot is not None:
            raise RuntimeError("step_wait() must drain the previous step_async()")
        actions = self._validate_actions(actions)
        if self._inner is not None:
            self._pending_actions = np.array(actions, copy=True)
            self._pending_slot = -1  # degraded-mode marker
            return
        slot = self._step_count % 2
        self._act[slot] = actions
        if self._fault is not None:
            self._pending_actions = np.array(actions, copy=True)
        self._step_send_failed = self._send_commands(
            [("step", slot)] * len(self._conns), op="step"
        )
        self._pending_slot = slot
        self._step_count += 1

    def step_wait(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        """Collect the in-flight step. Returns *views* into the current
        slot buffers — valid until the second following ``step_async``
        (slots alternate per step); copy before keeping longer. (After
        graceful degradation the arrays are owned copies instead.)"""
        if self._pending_slot is None:
            raise RuntimeError("step_wait() without a pending step_async()")
        if self._inner is not None:
            return self._step_degraded()
        slot = self._pending_slot
        infos: List[Optional[Dict[str, Any]]] = [None] * self.num_envs
        command = ("step", slot)
        failed, self._step_send_failed = self._step_send_failed, {}
        deadline = self._deadline_for("step")
        try:
            for worker, shard in enumerate(self._shards):
                wait_start = time.perf_counter() if self._metrics is not None else 0.0
                if worker in failed:
                    reply = self._recover(worker, command, "step", failed.pop(worker))
                else:
                    try:
                        reply = self._recv(worker, deadline=deadline, op="step")
                    except _RECOVERABLE_ERRORS as error:
                        if self._fault is None:
                            # Either way the step protocol is desynchronised
                            # (later workers' replies are still queued, the
                            # failing worker's sub-pool state is unreliable)
                            # — tear the pool down rather than leave it
                            # half-stepped.
                            self.close()
                            raise
                        reply = self._recover(worker, command, "step", error)
                    except WorkerStepError:
                        self.close()
                        raise
                if self._metrics is not None:
                    self._m_step_wait.labels(str(worker)).observe(
                        time.perf_counter() - wait_start
                    )
                _, per_env, active, steps = reply
                infos[shard] = per_env
                self._active[shard] = active
                self._steps[shard] = steps
        except _Degraded:
            return self._step_degraded()
        self._pending_slot = None
        if self._fault is not None:
            self._journal.append(("step", self._pending_actions))
            self._pending_actions = None
        info = {"per_env": infos, "active": self._active.copy()}
        return self._obs[slot], self._rew[slot], self._done[slot], info

    def _step_degraded(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        """Finish (or run) the pending step through the in-process pool."""
        assert self._inner is not None and self._pending_actions is not None
        actions, self._pending_actions = self._pending_actions, None
        self._pending_slot = None
        return self._inner.step(actions)

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        self.step_async(actions)
        states, rewards, dones, info = self.step_wait()
        return states.copy(), rewards.copy(), dones.copy(), info

    # ------------------------------------------------------------------
    # shard-parallel full rollouts: replica sync + worker-side collection
    # ------------------------------------------------------------------
    @property
    def replica_version(self) -> int:
        """Version stamp of the last successful :meth:`sync_policy` (0 = none)."""
        return self._replica_version

    @property
    def replica_broadcasts(self) -> int:
        """How many :meth:`sync_policy` calls actually sent anything.

        An unchanged policy (same structure, byte-equal state arrays) is
        skipped entirely — the workers already hold these exact weights
        under the current version stamp — so training loops that call
        ``sync_policy`` every iteration pay for the archive only when
        parameters actually moved.
        """
        return self._replica_broadcasts

    def sync_policy(self, policy: ActorCriticBase) -> int:
        """Broadcast ``policy`` to every worker; returns the version stamp.

        The first broadcast (or any broadcast after the replica *shape*
        changed) ships the pickled policy object; subsequent broadcasts
        ship only the serialized ``replica_state`` archive — the full
        parameter set every time, so a replica can never be a partial
        delta behind the parent. A broadcast whose state arrays are
        byte-identical to the last successful one is **skipped
        entirely** (no pipe traffic, same version stamp returned): the
        workers' replicas are already exact, so re-sending would be pure
        overhead (see :attr:`replica_broadcasts`). Raises ``ValueError``
        before anything is sent when the archive exceeds
        ``max_param_bytes`` (the pool stays open and usable), and the
        usual pool errors (:class:`WorkerCrashed` /
        :class:`WorkerStepError`) when a worker dies or rejects the
        broadcast mid-way (without a fault policy the pool is closed
        first — no hang, shared memory unlinked; with one the worker is
        recovered or the pool degrades in-process).
        """
        self._check_open()
        self._check_no_collect("sync_policy()")
        state = _replica_state(policy)
        signature = tuple(sorted((key, value.shape) for key, value in state.items()))
        if (
            self._replica_version > 0
            and signature == self._replica_signature
            and self._replica_cache is not None
            and all(
                np.array_equal(value, self._replica_cache[key])
                for key, value in state.items()
            )
        ):
            return self._replica_version  # unchanged: nothing to re-send
        payload = state_to_bytes(state)
        if len(payload) > self.max_param_bytes:
            raise ValueError(
                f"policy replica state is {len(payload)} bytes, over this "
                f"pool's max_param_bytes={self.max_param_bytes}; raise the "
                "limit if broadcasting a model this large every iteration is "
                "intentional"
            )
        version = self._replica_version + 1
        ships_structure = signature != self._replica_signature
        if self._inner is None:
            if ships_structure:  # structure changed (or first sync)
                command = ("replica", {"policy": policy, "state": None, "version": version})
            else:
                command = ("replica", {"policy": None, "state": payload, "version": version})
            try:
                self._exchange([command] * self.num_workers, op="replica")
            except _Degraded:
                pass  # fall through: archive the replica for in-process use
        if self._fault is not None or self._inner is not None:
            # Archive what a respawned worker (or the degraded in-process
            # path) needs: the structure once, the current weights always.
            if ships_structure or self._replica_struct is None:
                self._replica_struct = pickle.dumps(policy)
            self._replica_payload = payload
            self._degraded_replica = None
        self._replica_version = version
        self._replica_signature = signature
        self._replica_cache = {
            key: np.array(value, copy=True) for key, value in state.items()
        }
        self._replica_broadcasts += 1
        return version

    def _ensure_traj(self, capacity: int) -> str:
        """Allocate (or grow) the shared trajectory segment; returns its name."""
        if self._traj_shm is None or capacity > self._traj_capacity:
            if self._traj_shm is not None:
                self._traj_stacked = self._traj_last = None
                stale = self._traj_shm
                self._shm_segments.remove(stale)
                try:
                    stale.close()
                except BufferError:  # pragma: no cover - lingering views
                    pass
                try:
                    stale.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            layout = _TrajLayout(capacity, *self._layout.spec())
            self._traj_shm = shared_memory.SharedMemory(create=True, size=layout.size)
            self._shm_segments.append(self._traj_shm)
            self._traj_capacity = capacity
            self._traj_stacked, self._traj_last = layout.views(self._traj_shm.buf)
        return self._traj_shm.name

    def _as_env_rngs(
        self, rng: RNGLike
    ) -> Tuple[List[np.random.Generator], Optional[List[np.random.Generator]]]:
        """Per-env generators plus the caller-owned objects to sync back.

        Mirrors :func:`repro.rl.vec._as_block_rng`: a single generator is
        split into per-env child streams (the children are transient, so
        nothing is synced back — exactly the vectorized-path semantics);
        an explicit sequence or a :class:`~repro.rl.vec.BlockRNG` hands
        over caller-owned generators whose advanced states are copied
        back after collection, preserving multi-episode stream
        continuity.
        """
        if isinstance(rng, BlockRNG):
            rngs = list(rng.rngs)
            owners: Optional[List[np.random.Generator]] = rngs
        elif isinstance(rng, np.random.Generator):
            rngs = split_rng(rng, self.num_envs)
            owners = None
        else:
            rngs = list(rng)
            owners = rngs
        if len(rngs) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} generators, got {len(rngs)}")
        return rngs, owners

    def collect_rollouts(
        self,
        rng: RNGLike,
        max_steps: Optional[int] = None,
        extras_from_info: Tuple[str, ...] = (),
    ) -> List[RolloutSegment]:
        """Run the full act → step → record loop inside every worker.

        Each worker rolls its shard with its policy replica (one
        :func:`~repro.rl.vec.collect_segments_vec` over the shard-local
        sub-pool), writes the finished trajectory arrays into the shared
        trajectory segment, and replies with per-env lengths, extras and
        advanced RNG states; the parent then cuts per-env
        :class:`~repro.rl.buffer.RolloutSegment` objects out of the
        shared arrays via :func:`~repro.rl.vec.assemble_segments`.
        Bit-identical to the step-server and in-process paths (module
        docstring); requires a prior :meth:`sync_policy`. Under a fault
        policy, caller-owned RNG states are applied only after *every*
        worker answered, so an interrupted collect replays (or degrades)
        with pristine inputs — recovered rollouts are bit-identical.

        Implemented as :meth:`collect_rollouts_async` followed
        immediately by :meth:`collect_rollouts_wait`; use the pair
        directly to overlap parent-side work (e.g. a PPO update) with
        the workers' collection.
        """
        self.collect_rollouts_async(
            rng, max_steps=max_steps, extras_from_info=extras_from_info
        )
        return self.collect_rollouts_wait()

    def collect_rollouts_async(
        self,
        rng: RNGLike,
        max_steps: Optional[int] = None,
        extras_from_info: Tuple[str, ...] = (),
    ) -> None:
        """Dispatch a full rollout to every worker without waiting.

        The workers start their act → step → record loops against the
        last-broadcast replica immediately; the parent is free to run
        other work (a policy update, metric logging) and must call
        :meth:`collect_rollouts_wait` to gather the segments. Exactly
        one collect can be in flight, and every other pool command
        (step/reset/broadcast/evaluate/load/fetch) is fenced until the
        wait — only :meth:`close` is allowed, which discards the
        in-flight collect. All side effects (caller-owned RNG
        advancement, snapshot/journal refresh) are applied by the wait,
        after every worker answered, so the fault-recovery contract is
        unchanged. On a degraded pool the in-process collect is deferred
        to the wait as well: the caller's dispatch→update→wait schedule
        executes identically, just without overlap.
        """
        self._check_open()
        if self._pending_slot is not None:
            raise RuntimeError(
                "collect_rollouts_async() during an in-flight step_async()"
            )
        self._check_no_collect("collect_rollouts_async()")
        if self._replica_version == 0:
            raise RuntimeError(
                "collect_rollouts_async() needs a policy replica: call "
                "sync_policy() first"
            )
        if max_steps is None:
            max_steps = self.max_steps
        rngs, owners = self._as_env_rngs(rng)
        extras = tuple(extras_from_info)
        if self._inner is not None:
            self._collect_pending = {
                "degraded": True,
                "rngs": rngs,
                "max_steps": max_steps,
                "extras": extras,
            }
            return
        capacity = max(max_steps or horizon for horizon in self._horizons)
        traj_name = self._ensure_traj(capacity)
        commands = []
        for shard in self._shards:
            commands.append(
                (
                    "rollout",
                    {
                        "version": self._replica_version,
                        "traj": (traj_name, self._traj_capacity),
                        "max_steps": max_steps,
                        "extras": extras,
                        "rngs": rngs[shard.start : shard.stop],
                        "return_envs": self._fault is not None,
                    },
                )
            )
        # Fail-fast pools close-and-raise inside _send_commands; with a
        # fault policy the send failures are recorded and recovered at
        # wait time, exactly like the synchronous path.
        failed = self._send_commands(commands, op="rollout")
        self._collect_pending = {
            "degraded": False,
            "commands": commands,
            "failed": failed,
            "rngs": rngs,
            "owners": owners,
            "max_steps": max_steps,
            "extras": extras,
        }

    def collect_rollouts_wait(self) -> List[RolloutSegment]:
        """Gather the in-flight async collect and commit its side effects.

        Blocks until every worker answered (recovering crashed workers
        under a :class:`FaultPolicy`, degrading on budget exhaustion),
        then — and only then — applies caller-owned RNG states,
        refreshes the recovery snapshots, clears the journal and cuts
        the :class:`~repro.rl.buffer.RolloutSegment` objects. A failed
        wait clears the pending collect before propagating, so the pool
        is never left half-waiting.
        """
        self._check_open()
        pending = self._collect_pending
        if pending is None:
            raise RuntimeError(
                "collect_rollouts_wait() without a collect_rollouts_async()"
            )
        self._collect_pending = None
        max_steps = pending["max_steps"]
        extras_from_info = pending["extras"]
        rngs = pending["rngs"]
        if pending["degraded"]:
            return self._collect_degraded(rngs, max_steps, extras_from_info)
        commands = pending["commands"]
        owners = pending["owners"]
        lengths: List[Optional[int]] = [None] * self.num_envs
        extras_per_env: List[Optional[Dict[str, np.ndarray]]] = [None] * self.num_envs
        rng_states: List[Any] = [None] * self.num_envs
        env_blobs: List[Optional[bytes]] = [None] * len(self._shards)
        deadline = self._deadline_for("rollout")
        try:
            failed = dict(pending["failed"])
            for worker, shard in enumerate(self._shards):
                wait_start = time.perf_counter() if self._metrics is not None else 0.0
                if worker in failed:
                    reply = self._recover(
                        worker, commands[worker], "rollout", failed.pop(worker)
                    )
                else:
                    try:
                        reply = self._recv(worker, deadline=deadline, op="rollout")
                    except _RECOVERABLE_ERRORS as error:
                        if self._fault is None:
                            self.close()
                            raise
                        reply = self._recover(worker, commands[worker], "rollout", error)
                    except WorkerStepError:
                        self.close()
                        raise
                if self._metrics is not None:
                    self._m_collect_wait.labels(str(worker)).observe(
                        time.perf_counter() - wait_start
                    )
                _, shard_lengths, shard_extras, shard_states, env_blob = reply
                env_blobs[worker] = env_blob
                for offset, env_index in enumerate(range(shard.start, shard.stop)):
                    lengths[env_index] = int(shard_lengths[offset])
                    extras_per_env[env_index] = shard_extras[offset]
                    rng_states[env_index] = shard_states[offset]
        except _Degraded:
            return self._collect_degraded(rngs, max_steps, extras_from_info)
        # The collect succeeded on every shard: only now apply the side
        # effects (owner RNG advancement, recovery baseline refresh) —
        # a failed collect must leave no partial state behind.
        if owners is not None:
            for env_index, state in enumerate(rng_states):
                owners[env_index].bit_generator.state = state
        if self._fault is not None:
            self._snapshots = env_blobs
            self._journal.clear()
        self._steps[:] = lengths
        self._active[:] = False
        last_values = [self._traj_last[block] for block in self.slices]
        segments = assemble_segments(
            self._traj_stacked,
            {},
            lengths,
            last_values,
            self.slices,
            self.group_id,
        )
        if extras_from_info:
            # Workers return extras already cut per env (the arrays their
            # shard-local collector produced); attach them directly — the
            # parent owns the unpickled copies, no restacking needed.
            for segment, extras in zip(segments, extras_per_env):
                segment.extras = {key: extras[key] for key in extras_from_info}
        return segments

    def _collect_degraded(
        self,
        rngs: List[np.random.Generator],
        max_steps: Optional[int],
        extras_from_info: Tuple[str, ...],
    ) -> List[RolloutSegment]:
        """Run the interrupted (or a fresh) rollout through the inner pool.

        Uses the archived policy replica — byte-equal to the weights the
        workers held — and the caller's generator objects directly (they
        were not advanced by the failed attempt), so the segments are
        bit-identical to what the workers would have produced.
        """
        assert self._inner is not None
        replica = self._materialize_replica()
        self._inner.max_steps = max_steps
        segments = collect_segments_vec(
            self._inner,
            replica,
            rngs,
            extras_from_info=tuple(extras_from_info),
            overlap=False,
        )
        self._steps[:] = [segment.horizon for segment in segments]
        self._active[:] = False
        return segments

    def evaluate_policy(
        self,
        rng: RNGLike,
        episodes: int = 1,
        gamma: float = 1.0,
        deterministic: bool = True,
        max_steps: Optional[int] = None,
    ) -> np.ndarray:
        """Replica-side evaluation sweep: every worker evaluates its shard.

        The sharded counterpart of :func:`~repro.rl.vec.evaluate_policy_vec`
        that finally retires its parent-side acting: each worker runs
        :func:`~repro.rl.vec.evaluate_policy_replica` over its shard-local
        sub-pool with its **policy replica** (requires a prior
        :meth:`sync_policy`; a stale replica raises
        :class:`StaleReplicaError`) and its slice of the per-env noise
        streams, then replies with per-env mean (discounted) returns and
        advanced RNG states. Because the kernel draws each env's action
        noise from that env's own stream and computes context per env
        block, the totals are bit-identical to evaluating the same envs in
        one in-process pool — for any worker count. ``rng`` follows the
        :meth:`collect_rollouts` convention (single generator → transient
        per-env children; sequence / :class:`~repro.rl.vec.BlockRNG` →
        caller-owned streams, synced back only after every worker
        answered). Under a :class:`FaultPolicy` the sweep participates in
        recovery exactly like a rollout: crashed workers are respawned and
        re-issued the sweep with pristine inputs, and the recovery
        baseline is refreshed on success (the sweep advances worker-side
        env RNGs, so the old snapshots no longer describe the shard).
        """
        self._check_open()
        self._check_no_collect("evaluate_policy()")
        if self._pending_slot is not None:
            raise RuntimeError("evaluate_policy() during an in-flight step_async()")
        if self._replica_version == 0:
            raise RuntimeError(
                "evaluate_policy() needs a policy replica: call sync_policy() first"
            )
        if max_steps is None:
            max_steps = self.max_steps
        rngs, owners = self._as_env_rngs(rng)
        if self._inner is not None:
            return _replica_eval(
                self._inner,
                self._materialize_replica(),
                rngs,
                episodes=episodes,
                gamma=gamma,
                deterministic=deterministic,
                max_steps=max_steps,
            )
        commands = []
        for shard in self._shards:
            commands.append(
                (
                    "evaluate",
                    {
                        "version": self._replica_version,
                        "episodes": episodes,
                        "gamma": gamma,
                        "deterministic": deterministic,
                        "max_steps": max_steps,
                        "rngs": rngs[shard.start : shard.stop],
                        "return_envs": self._fault is not None,
                    },
                )
            )
        totals = np.zeros(self.num_envs)
        rng_states: List[Any] = [None] * self.num_envs
        env_blobs: List[Optional[bytes]] = [None] * len(self._shards)
        deadline = self._deadline_for("evaluate")
        try:
            failed = self._send_commands(commands, op="evaluate")
            for worker, shard in enumerate(self._shards):
                if worker in failed:
                    reply = self._recover(
                        worker, commands[worker], "evaluate", failed.pop(worker)
                    )
                else:
                    try:
                        reply = self._recv(worker, deadline=deadline, op="evaluate")
                    except _RECOVERABLE_ERRORS as error:
                        if self._fault is None:
                            self.close()
                            raise
                        reply = self._recover(
                            worker, commands[worker], "evaluate", error
                        )
                    except WorkerStepError:
                        self.close()
                        raise
                _, shard_totals, shard_states, env_blob = reply
                env_blobs[worker] = env_blob
                totals[shard] = shard_totals
                for offset, env_index in enumerate(range(shard.start, shard.stop)):
                    rng_states[env_index] = shard_states[offset]
        except _Degraded:
            return _replica_eval(
                self._inner,
                self._materialize_replica(),
                rngs,
                episodes=episodes,
                gamma=gamma,
                deterministic=deterministic,
                max_steps=max_steps,
            )
        # All shards answered: only now apply side effects (same
        # all-or-nothing rule as collect_rollouts).
        if owners is not None:
            for env_index, state in enumerate(rng_states):
                owners[env_index].bit_generator.state = state
        if self._fault is not None:
            self._snapshots = env_blobs
            self._journal.clear()
        self._steps[:] = 0
        self._active[:] = False
        return totals

    # ------------------------------------------------------------------
    def load_envs(self, envs: Sequence[MultiUserEnv]) -> None:
        """Replace the member envs, reusing the worker processes.

        The new envs must match the current layout exactly (same per-env
        user counts and dims) so the shared buffers and shard boundaries
        stay valid; each worker rebuilds its in-process sub-pool from the
        pickled replacements. Call :meth:`reset` afterwards as usual.
        """
        envs = list(envs)
        if [env.num_users for env in envs] != self._user_counts:
            raise ValueError(
                "load_envs needs the same per-env user counts as the current "
                f"pool ({self._user_counts})"
            )
        first = envs[0]
        if (
            first.observation_dim != self._layout.obs_dim
            or first.action_dim != self._layout.act_dim
        ):
            raise ValueError("load_envs needs matching observation/action dims")
        if len({id(env) for env in envs}) != len(envs):
            raise ValueError("load_envs members must be distinct objects")
        self._check_open()
        self._check_no_collect("load_envs()")
        if self._inner is None:
            try:
                self._exchange(
                    [("load", list(envs[shard])) for shard in self._shards], op="load"
                )
            except _Degraded:
                pass  # fall through to the in-process replacement below
        if self._inner is not None:
            self._inner = VecEnvPool(envs, max_steps=self.max_steps)
        elif self._fault is not None:
            self._snapshots = [pickle.dumps(list(envs[shard])) for shard in self._shards]
            self._journal.clear()
        self.group_id = [env.group_id for env in envs]
        self._horizons = [env.horizon for env in envs]
        self.horizon = max(self._horizons)
        self._active[:] = False

    def fetch_member_envs(self) -> List[MultiUserEnv]:
        """Pull the worker-side env objects (their advanced state) back.

        Training loops whose samplers hand out *shared* env objects rely
        on state continuity across iterations (RNG streams, user gaps);
        syncing the fetched state back into the parent's objects keeps
        sharded collection bit-identical to in-process collection over a
        whole training run.
        """
        self._check_open()
        self._check_no_collect("fetch_member_envs()")
        if self._inner is None:
            try:
                replies = self._exchange(
                    [("fetch",)] * self.num_workers, op="fetch"
                )
            except _Degraded:
                return list(self._inner.envs)
            fetched: List[MultiUserEnv] = []
            for reply in replies:
                fetched.extend(reply[1])
            return fetched
        return list(self._inner.envs)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and release every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        # An in-flight async collect is discarded: the workers are about
        # to be reaped, and no side effect was committed at dispatch.
        self._collect_pending = None
        # Drop our buffer views so the segments' mmaps can actually close.
        self._obs = self._act = self._rew = self._done = None
        self._traj_stacked = self._traj_last = None
        self._finalizer.detach()
        _cleanup(self._procs, self._conns, self._shm_segments)
        self._inner = None
        self._degraded_replica = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardedVecEnvPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def collect_segments_shard_parallel(
    pool: Union[ShardedVecEnvPool, Sequence[MultiUserEnv]],
    policy: ActorCriticBase,
    rng: RNGLike,
    num_workers: int = 2,
    max_steps: Optional[int] = None,
    extras_from_info: Tuple[str, ...] = (),
) -> List[RolloutSegment]:
    """One-shot shard-parallel collection: sync the policy, roll, assemble.

    The full-rollout counterpart of
    :func:`~repro.rl.vec.collect_segments_vec`: given a prebuilt
    :class:`ShardedVecEnvPool` it broadcasts ``policy`` and collects in
    the workers (reuse the pool across iterations to amortise process
    startup and the structure broadcast); given a plain env sequence it
    builds a throwaway pool, collects once and closes it.
    """
    if isinstance(pool, ShardedVecEnvPool):
        pool.sync_policy(policy)
        return pool.collect_rollouts(
            rng, max_steps=max_steps, extras_from_info=extras_from_info
        )
    with ShardedVecEnvPool(pool, num_workers=num_workers) as owned:
        owned.sync_policy(policy)
        return owned.collect_rollouts(
            rng, max_steps=max_steps, extras_from_info=extras_from_info
        )


def evaluate_policy_replicas(
    envs: Union[ShardableVecPool, Sequence[MultiUserEnv]],
    policy: ActorCriticBase,
    rng: RNGLike,
    episodes: int = 1,
    gamma: float = 1.0,
    deterministic: bool = True,
    max_steps: Optional[int] = None,
) -> np.ndarray:
    """Deprecated alias for :func:`repro.rl.evaluate` (replica routing).

    Use ``repro.rl.evaluate(policy, envs, rng=..., ...)`` instead — the
    unified front door applies the identical routing (a
    :class:`ShardedVecEnvPool` gets the policy synced and evaluated
    inside the workers; anything else runs the same kernel in-process),
    so results are bit-identical.
    """
    import warnings

    warnings.warn(
        "repro.rl.evaluate_policy_replicas is deprecated; use "
        "repro.rl.evaluate(policy, envs, rng=..., ...) — the unified "
        "evaluation front door (bit-identical results)",
        DeprecationWarning,
        stacklevel=2,
    )
    from .evaluate import evaluate

    totals = evaluate(
        policy,
        envs,
        episodes=episodes,
        gamma=gamma,
        mode="replica",
        rng=rng,
        deterministic=deterministic,
        max_steps=max_steps,
    )
    return np.atleast_1d(np.asarray(totals, dtype=np.float64))

"""Rollout storage for sequence-based (multi-user) PPO.

A :class:`RolloutSegment` holds one truncated rollout of a whole user group
in a single environment — the unit produced by Alg. 1, line 6 and consumed
(after the reward/done post-processing of lines 8–9) by the PPO update.
All arrays are time-major: ``[T, N, ...]`` for N users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .gae import compute_gae, valid_step_mask


@dataclass
class RolloutSegment:
    """One group's rollout in one sampled simulator."""

    states: np.ndarray        # [T, N, ds]  (state at which the action was taken)
    prev_actions: np.ndarray  # [T, N, da]  (a_{t-1}; zeros at the first step)
    actions: np.ndarray       # [T, N, da]
    rewards: np.ndarray       # [T, N]
    dones: np.ndarray         # [T, N]
    values: np.ndarray        # [T, N]
    log_probs: np.ndarray     # [T, N]
    last_values: np.ndarray   # [N]
    group_id: Any = None
    extras: Dict[str, np.ndarray] = field(default_factory=dict)
    advantages: Optional[np.ndarray] = None
    returns: Optional[np.ndarray] = None
    valid_mask: Optional[np.ndarray] = None

    def __post_init__(self):
        t, n = self.rewards.shape
        if self.states.shape[:2] != (t, n):
            raise ValueError("states shape inconsistent with rewards")
        if self.actions.shape[:2] != (t, n):
            raise ValueError("actions shape inconsistent with rewards")
        if self.prev_actions.shape != self.actions.shape:
            raise ValueError("prev_actions must match actions shape")
        for name in ("dones", "values", "log_probs"):
            if getattr(self, name).shape != (t, n):
                raise ValueError(f"{name} must have shape [T, N]")
        if self.last_values.shape != (n,):
            raise ValueError("last_values must have shape [N]")

    @property
    def horizon(self) -> int:
        return self.rewards.shape[0]

    @property
    def num_users(self) -> int:
        return self.rewards.shape[1]

    def finalize(self, gamma: float, lam: float, bootstrap_last: bool = False) -> None:
        """Compute GAE advantages/returns and the validity mask.

        Call *after* any reward/done post-processing (uncertainty penalty,
        F_trend / F_exec) so the advantages see the final reward signal.
        """
        self.advantages, self.returns = compute_gae(
            self.rewards,
            self.values,
            self.dones,
            self.last_values,
            gamma=gamma,
            lam=lam,
            bootstrap_last=bootstrap_last,
        )
        self.valid_mask = valid_step_mask(self.dones)

    def normalized_advantages(self) -> np.ndarray:
        """Advantages standardised over valid steps (PPO stabiliser)."""
        if self.advantages is None or self.valid_mask is None:
            raise RuntimeError("call finalize() before normalized_advantages()")
        mask = self.valid_mask
        total = mask.sum()
        mean = (self.advantages * mask).sum() / max(total, 1.0)
        centered = (self.advantages - mean) * mask
        std = np.sqrt((centered**2).sum() / max(total, 1.0))
        return centered / (std + 1e-8)

    def mean_episode_reward(self) -> float:
        """Average per-user sum of rewards over valid steps."""
        mask = self.valid_mask if self.valid_mask is not None else np.ones_like(self.rewards)
        return float((self.rewards * mask).sum(axis=0).mean())


class RolloutBuffer:
    """A list of segments collected during one training iteration."""

    def __init__(self):
        self.segments: List[RolloutSegment] = []

    def add(self, segment: RolloutSegment) -> None:
        self.segments.append(segment)

    def clear(self) -> None:
        self.segments = []

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    @property
    def total_steps(self) -> int:
        return sum(s.rewards.size for s in self.segments)

    def finalize(self, gamma: float, lam: float, bootstrap_last: bool = False) -> None:
        for segment in self.segments:
            segment.finalize(gamma, lam, bootstrap_last=bootstrap_last)

    def mean_reward(self) -> float:
        if not self.segments:
            raise RuntimeError("buffer is empty")
        return float(np.mean([s.mean_episode_reward() for s in self.segments]))

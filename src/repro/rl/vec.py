"""Batched cross-city rollout engine.

Sim2Rec trains one policy against an *ensemble* of simulators (many
cities × many drivers), so rollout throughput dominates every
experiment. The sequential path (:func:`repro.rl.runner.collect_segment`)
rolls one city at a time, paying the full per-step Python/numpy overhead
once per city per timestep. This module stacks N homogeneous
:class:`~repro.envs.base.MultiUserEnv` groups on the **user axis** so the
policy is driven with a single ``act`` call per timestep for all cities
at once — the block-diagonal vectorisation used by RecSim-style env
pools.

Determinism contract
--------------------
:func:`collect_segments_vec` produces per-city :class:`RolloutSegment`
objects *numerically identical* to looping ``collect_segment`` city by
city, provided each city keeps its own policy-noise stream:

- every environment steps with its own internal RNG exactly as in the
  sequential path (the pool never draws from env RNGs);
- policy sampling noise is drawn through :class:`BlockRNG`, which owns
  one ``np.random.Generator`` per environment and fills each env's block
  of the stacked batch from that env's stream;
- group-level context (the SADAE embedding υ_t) is computed per block via
  ``policy.set_rollout_groups``, never across city boundaries.

Per-env done masking: an environment leaves the pool as soon as all of
its users are done (or its own step budget is exhausted); its block is
frozen and its value bootstrap is taken from the first ``act`` call after
its final transition — exactly the state the sequential bootstrap sees.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..envs.base import MultiUserEnv
from ..nn import no_grad
from .buffer import RolloutSegment
from .policies import ActorCriticBase

RNGLike = Union[np.random.Generator, Sequence[np.random.Generator], "BlockRNG"]


def split_rng(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators deterministically."""
    try:
        return list(rng.spawn(count))
    except (AttributeError, TypeError):  # pragma: no cover - legacy numpy
        seeds = rng.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(seed)) for seed in seeds]


class BlockRNG:
    """Drop-in ``np.random.Generator`` facade over block-stacked batches.

    Draws whose leading axis equals the stacked user count are split so
    each environment's rows come from that environment's own stream —
    the property that makes vectorized rollouts bit-reproduce sequential
    per-city rollouts.
    """

    def __init__(self, rngs: Sequence[np.random.Generator], slices: Sequence[slice]):
        if len(rngs) != len(slices):
            raise ValueError("need exactly one generator per block")
        self.rngs = list(rngs)
        self.slices = list(slices)
        self.total = slices[-1].stop if slices else 0

    def _split_shape(self, size) -> Optional[Tuple[int, ...]]:
        if size is None:
            return None
        shape = (size,) if isinstance(size, int) else tuple(size)
        if shape and shape[0] == self.total:
            return shape
        return None

    def standard_normal(self, size=None) -> np.ndarray:
        shape = self._split_shape(size)
        if shape is None:
            raise ValueError(
                f"BlockRNG draws must have leading axis {self.total}, got size={size!r}"
            )
        out = np.empty(shape)
        for rng, block in zip(self.rngs, self.slices):
            out[block] = rng.standard_normal((block.stop - block.start,) + shape[1:])
        return out

    def random(self, size=None) -> np.ndarray:
        shape = self._split_shape(size)
        if shape is None:
            raise ValueError(
                f"BlockRNG draws must have leading axis {self.total}, got size={size!r}"
            )
        out = np.empty(shape)
        for rng, block in zip(self.rngs, self.slices):
            out[block] = rng.random((block.stop - block.start,) + shape[1:])
        return out

    def normal(self, loc=0.0, scale=1.0, size=None) -> np.ndarray:
        shape = self._split_shape(size)
        if shape is None:
            raise ValueError(
                f"BlockRNG draws must have leading axis {self.total}, got size={size!r}"
            )
        loc = np.broadcast_to(np.asarray(loc, dtype=np.float64), shape)
        scale = np.broadcast_to(np.asarray(scale, dtype=np.float64), shape)
        out = np.empty(shape)
        for rng, block in zip(self.rngs, self.slices):
            count = block.stop - block.start
            out[block] = rng.normal(loc[block], scale[block], size=(count,) + shape[1:])
        return out

    def uniform(self, low=0.0, high=1.0, size=None) -> np.ndarray:
        shape = self._split_shape(size)
        if shape is None:
            raise ValueError(
                f"BlockRNG draws must have leading axis {self.total}, got size={size!r}"
            )
        out = np.empty(shape)
        for rng, block in zip(self.rngs, self.slices):
            count = block.stop - block.start
            out[block] = rng.uniform(low, high, size=(count,) + shape[1:])
        return out


class ShardableVecPool(MultiUserEnv):
    """Protocol base for env pools drivable by :func:`collect_segments_vec`.

    A pool is a :class:`MultiUserEnv` over a stacked user axis that also
    exposes the block structure and per-member progress the collector
    needs:

    - ``slices`` / ``group_slices`` — one user-axis slice per member env,
      in member order (``group_slices`` is the duck-typed alias consumed
      by ``evaluate_policy`` and context-aware policies);
    - ``group_id`` — list of member group ids, in slice order;
    - ``num_envs``, ``active_mask``, ``env_steps``, ``all_done``;
    - ``max_steps`` — settable per-episode step budget, applied at the
      next ``reset``;
    - optionally ``step_async(actions)`` / ``step_wait()`` for overlapped
      stepping. ``step_wait`` may return *views* into double-buffered
      storage; they stay valid until the second following ``step_async``
      (slots alternate per step), which is exactly the window the
      overlapped collector uses to copy them out while the next env step
      is already in flight.

    :class:`VecEnvPool` is the in-process implementation;
    :class:`repro.rl.workers.ShardedVecEnvPool` shards members across
    worker processes behind the same protocol — because every member env
    steps with its own internal RNG and every policy draw comes from that
    env's :class:`BlockRNG` stream, results are placement-independent and
    any implementation of this protocol yields bit-identical segments.
    """

    max_steps: Optional[int] = None

    @property
    def num_envs(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def active_mask(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def env_steps(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def all_done(self) -> bool:
        return not self.active_mask.any()


def validate_pool_members(envs: Sequence[MultiUserEnv]) -> List[slice]:
    """Shared member checks for every pool implementation.

    Enforces the pool invariants (at least one env, distinct objects,
    homogeneous obs/action dims) and returns the user-axis slice of each
    member, in order.
    """
    if not envs:
        raise ValueError("a vec env pool needs at least one environment")
    if len({id(env) for env in envs}) != len(envs):
        raise ValueError(
            "pool members must be distinct objects; stepping one env "
            "under two blocks would corrupt its state"
        )
    first = envs[0]
    for env in envs[1:]:
        if env.observation_dim != first.observation_dim:
            raise ValueError("pool members must share the observation dimension")
        if env.action_dim != first.action_dim:
            raise ValueError("pool members must share the action dimension")
    offsets = np.cumsum([0] + [env.num_users for env in envs])
    return [slice(int(a), int(b)) for a, b in zip(offsets[:-1], offsets[1:])]


class VecEnvPool(ShardableVecPool):
    """N homogeneous multi-user environments stacked on the user axis.

    The pool is itself a :class:`MultiUserEnv` whose ``num_users`` is the
    sum over members, so everything written against the single-env
    interface (``evaluate_policy``, behaviour policies, metrics) works on
    a whole city set unchanged. ``step`` applies the block-diagonal
    transition: each member env receives its own slice of the stacked
    action matrix and advances with its own internal RNG.

    Finished members (all users done, or the member's step budget spent)
    are masked out: their state block freezes, their rewards read zero
    and their dones read True, and the underlying env is never stepped
    again — mirroring the sequential early-exit.
    """

    def __init__(self, envs: Sequence[MultiUserEnv], max_steps: Optional[int] = None):
        self.slices = validate_pool_members(envs)
        first = envs[0]
        self.envs = list(envs)
        self.max_steps = max_steps
        # Duck-typed hook consumed by evaluate_policy / context-aware
        # policies without importing this module.
        self.group_slices = self.slices
        self.num_users = int(self.slices[-1].stop)
        self.horizon = max(env.horizon for env in self.envs)
        self.observation_space = first.observation_space
        self.action_space = first.action_space
        self.group_id = [env.group_id for env in self.envs]
        self._active = np.zeros(len(self.envs), dtype=bool)
        self._steps = np.zeros(len(self.envs), dtype=np.int64)
        self._limits = np.zeros(len(self.envs), dtype=np.int64)
        self._states = np.zeros((self.num_users, first.observation_dim))
        # Native block-diagonal stepping: env classes may provide a
        # ``make_batch_stepper(envs, slices)`` classmethod returning an
        # object with reset()/step() over the stacked user axis (or None
        # when the members are not homogeneous enough). The stepper must
        # preserve per-env RNG streams and guarantee that all members
        # finish simultaneously (equal horizons). Implementations:
        # DPRCityEnv, SimulatedDPREnv (shared simulator) and LTSEnv.
        self._batch_stepper = None
        factory = getattr(type(first), "make_batch_stepper", None)
        if factory is not None and len(self.envs) > 1:
            self._batch_stepper = factory(self.envs, self.slices)

    # ------------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self.envs)

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask over member envs still running (copy)."""
        return self._active.copy()

    @property
    def env_steps(self) -> np.ndarray:
        """Steps taken by each member env this episode (copy)."""
        return self._steps.copy()

    @property
    def all_done(self) -> bool:
        return not self._active.any()

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        if self._batch_stepper is not None:
            fresh = self._batch_stepper.reset()
            self._states[:] = fresh
        else:
            for env, block in zip(self.envs, self.slices):
                self._states[block] = env.reset()
            fresh = self._states.copy()
        self._active[:] = True
        self._steps[:] = 0
        for index, env in enumerate(self.envs):
            self._limits[index] = self.max_steps or env.horizon
        return fresh

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        actions = self._validate_actions(actions)
        if self._batch_stepper is not None and self._active.all():
            states, rewards, dones, infos = self._batch_stepper.step(actions)
            self._states[:] = states
            self._steps += 1
            for index in range(len(self.envs)):
                block = self.slices[index]
                if dones[block].all() or self._steps[index] >= self._limits[index]:
                    self._active[index] = False
            if self._active.any() and not self._active.all():
                raise RuntimeError(
                    "batched stepper members must finish simultaneously"
                )
            info = {"per_env": infos, "active": self._active.copy()}
            return states, rewards, dones, info
        if self._batch_stepper is not None and self._active.any():
            raise RuntimeError(
                "batched stepper pools cannot step a partially-finished batch"
            )
        rewards = np.zeros(self.num_users)
        dones = np.ones(self.num_users, dtype=bool)
        infos: List[Optional[Dict[str, Any]]] = [None] * len(self.envs)
        for index, (env, block) in enumerate(zip(self.envs, self.slices)):
            if not self._active[index]:
                continue  # frozen block: state unchanged, reward 0, done True
            states, env_rewards, env_dones, info = env.step(actions[block])
            self._states[block] = states
            rewards[block] = env_rewards
            env_dones = np.asarray(env_dones, dtype=bool)
            dones[block] = env_dones
            infos[index] = info
            self._steps[index] += 1
            if env_dones.all() or self._steps[index] >= self._limits[index]:
                self._active[index] = False
        info = {"per_env": infos, "active": self._active.copy()}
        return self._states.copy(), rewards, dones, info


def _as_block_rng(rng: RNGLike, pool: ShardableVecPool) -> BlockRNG:
    if isinstance(rng, BlockRNG):
        return rng
    if isinstance(rng, np.random.Generator):
        return BlockRNG(split_rng(rng, pool.num_envs), pool.slices)
    rngs = list(rng)
    if len(rngs) != pool.num_envs:
        raise ValueError(f"expected {pool.num_envs} generators, got {len(rngs)}")
    return BlockRNG(rngs, pool.slices)


def collect_segments_vec(
    pool: Union[ShardableVecPool, Sequence[MultiUserEnv]],
    policy: ActorCriticBase,
    rng: RNGLike,
    max_steps: Optional[int] = None,
    extras_from_info: tuple[str, ...] = (),
    overlap: Optional[bool] = None,
) -> List[RolloutSegment]:
    """Roll ``policy`` in every pool member at once; one act per timestep.

    Returns one :class:`RolloutSegment` per member env, each truncated at
    that env's own final step and bootstrapped from the state after it —
    numerically identical (see the module docstring's determinism
    contract) to calling :func:`repro.rl.runner.collect_segment` per env
    with the matching per-env generator.

    ``rng`` may be a single generator (per-env streams are spawned from
    it), an explicit sequence of per-env generators, or a prebuilt
    :class:`BlockRNG`. ``max_steps``, when given, overrides a prebuilt
    pool's configured ``max_steps``; when omitted the pool's own setting
    stands.

    ``overlap`` selects the pipelined stepping mode: after each ``act``
    the actions are dispatched via ``step_async`` and the collector does
    its per-step recording (trajectory appends, buffer copies, bootstrap
    bookkeeping) *while the pool steps* — hiding env latency behind
    parent-side work. Requires a pool implementing ``step_async`` /
    ``step_wait`` (:class:`repro.rl.workers.ShardedVecEnvPool`); the
    default ``None`` enables it exactly when the pool supports it. The
    overlapped path records the same numbers in the same order as the
    synchronous one — only the copy timing differs.
    """
    if not isinstance(pool, ShardableVecPool):
        pool = VecEnvPool(pool, max_steps=max_steps)
    elif max_steps is not None:
        pool.max_steps = max_steps
    async_capable = hasattr(pool, "step_async") and hasattr(pool, "step_wait")
    if overlap is None:
        overlap = async_capable
    elif overlap and not async_capable:
        raise ValueError(
            "overlap=True needs a pool with step_async/step_wait "
            f"(got {type(pool).__name__})"
        )
    block_rng = _as_block_rng(rng, pool)
    with no_grad():
        return _collect_impl(pool, policy, block_rng, extras_from_info, overlap)


def _collect_impl(
    pool: ShardableVecPool,
    policy: ActorCriticBase,
    block_rng: BlockRNG,
    extras_from_info: tuple[str, ...],
    overlap: bool = False,
) -> List[RolloutSegment]:
    states = pool.reset()
    owns_states = True  # False while `states` aliases a pool buffer slot
    total = pool.num_users
    policy.start_rollout(total)
    if hasattr(policy, "set_rollout_groups"):
        policy.set_rollout_groups(pool.slices)
    prev_actions = np.zeros((total, policy.action_dim))

    seq_states: List[np.ndarray] = []
    seq_prev: List[np.ndarray] = []
    seq_actions: List[np.ndarray] = []
    seq_rewards: List[np.ndarray] = []
    seq_dones: List[np.ndarray] = []
    seq_values: List[np.ndarray] = []
    seq_log_probs: List[np.ndarray] = []
    seq_extras: Dict[str, List[np.ndarray]] = {key: [] for key in extras_from_info}

    lengths: List[Optional[int]] = [None] * pool.num_envs
    last_values: List[Optional[np.ndarray]] = [None] * pool.num_envs
    pending: List[int] = []  # finished envs awaiting their bootstrap values

    while not pool.all_done:
        actions, log_probs, values = policy.act(states, prev_actions, block_rng)
        # Envs that finished on the previous transition bootstrap from the
        # values of this act call: same post-terminal state, same recurrent
        # extractor state as the sequential bootstrap would see.
        for index in pending:
            last_values[index] = values[pool.slices[index]].copy()
        pending.clear()

        active_before = pool.active_mask
        if overlap:
            pool.step_async(actions)
            # Overlap window: while the workers apply `actions`, record
            # everything already in hand — including the copy of the
            # previous obs slot, which the double buffering keeps valid
            # (the in-flight step writes the *other* slot).
            if not owns_states:
                states = states.copy()
            next_states, rewards, dones, info = pool.step_wait()
            owns_states = False
        else:
            next_states, rewards, dones, info = pool.step(actions)
            owns_states = True

        seq_states.append(states)
        seq_prev.append(prev_actions)
        seq_actions.append(actions)
        seq_rewards.append(np.array(rewards, dtype=np.float64))
        seq_dones.append(np.array(dones, dtype=np.float64))
        seq_values.append(values)
        seq_log_probs.append(log_probs)
        per_env_infos = info["per_env"]
        for key in extras_from_info:
            buffer: Optional[np.ndarray] = None
            for env_info, block in zip(per_env_infos, pool.slices):
                if env_info is None:
                    continue  # frozen block; rows past an env's end are dropped
                value = np.asarray(env_info[key], dtype=np.float64)
                if buffer is None:
                    buffer = np.zeros((total,) + value.shape[1:])
                buffer[block] = value
            seq_extras[key].append(buffer)

        finished_now = np.nonzero(active_before & ~pool.active_mask)[0]
        for index in finished_now:
            lengths[index] = int(pool.env_steps[index])
            pending.append(int(index))

        states = next_states
        prev_actions = actions

    if pending:
        # Envs that ran until the global end: bootstrap exactly like the
        # sequential path (deterministic act, no extra noise draws).
        _, _, values = policy.act(states, prev_actions, block_rng, deterministic=True)
        for index in pending:
            last_values[index] = values[pool.slices[index]].copy()

    if hasattr(policy, "set_rollout_groups"):
        policy.set_rollout_groups(None)

    stacked = {
        "states": np.stack(seq_states),
        "prev_actions": np.stack(seq_prev),
        "actions": np.stack(seq_actions),
        "rewards": np.stack(seq_rewards),
        "dones": np.stack(seq_dones),
        "values": np.stack(seq_values),
        "log_probs": np.stack(seq_log_probs),
    }
    stacked_extras = {key: np.stack(value) for key, value in seq_extras.items()}
    return assemble_segments(
        stacked, stacked_extras, lengths, last_values, pool.slices, pool.group_id
    )


TRAJECTORY_FIELDS = (
    "states",
    "prev_actions",
    "actions",
    "rewards",
    "dones",
    "values",
    "log_probs",
)


def assemble_segments(
    stacked: Dict[str, np.ndarray],
    stacked_extras: Dict[str, np.ndarray],
    lengths: Sequence[Optional[int]],
    last_values: Sequence[Optional[np.ndarray]],
    slices: Sequence[slice],
    group_ids: Sequence[Any],
) -> List[RolloutSegment]:
    """Slice per-env :class:`RolloutSegment` objects out of stacked arrays.

    ``stacked`` holds one time-major ``[T, total_users, ...]`` array per
    :data:`TRAJECTORY_FIELDS` entry; env ``k`` owns user rows
    ``slices[k]`` and its first ``lengths[k]`` timesteps (rows past an
    env's own end are ignored — they may be unwritten scratch, e.g. the
    shared-memory trajectory buffers of shard-parallel collection).
    Shared by the in-process collector (:func:`collect_segments_vec`) and
    the shard-parallel parent
    (:meth:`repro.rl.workers.ShardedVecEnvPool.collect_rollouts`), so
    both paths cut and copy segments with exactly the same code.
    """
    segments: List[RolloutSegment] = []
    for index, gid in enumerate(group_ids):
        block = slices[index]
        steps = lengths[index]
        segments.append(
            RolloutSegment(
                states=stacked["states"][:steps, block].copy(),
                prev_actions=stacked["prev_actions"][:steps, block].copy(),
                actions=stacked["actions"][:steps, block].copy(),
                rewards=stacked["rewards"][:steps, block].copy(),
                dones=stacked["dones"][:steps, block].copy(),
                values=stacked["values"][:steps, block].copy(),
                log_probs=stacked["log_probs"][:steps, block].copy(),
                last_values=np.array(last_values[index], dtype=np.float64),
                group_id=gid,
                extras={
                    key: value[:steps, block].copy()
                    for key, value in stacked_extras.items()
                },
            )
        )
    return segments


def evaluate_policy_vec(
    envs: Union[ShardableVecPool, Sequence[MultiUserEnv]],
    act_fn,
    episodes: int = 1,
    gamma: float = 1.0,
) -> np.ndarray:
    """Deprecated alias for :func:`repro.rl.evaluate` with ``mode="vec"``.

    Per-env average (discounted) per-user return with one ``act_fn`` call
    per step over the stacked pool. Use
    ``repro.rl.evaluate(act_fn, envs, mode="vec", ...)`` instead; results
    are bit-identical (the alias delegates to the same kernel).
    """
    import warnings

    warnings.warn(
        "repro.rl.evaluate_policy_vec is deprecated; use "
        "repro.rl.evaluate(act_fn, envs, mode='vec', ...) — the unified "
        "evaluation front door (bit-identical results)",
        DeprecationWarning,
        stacklevel=2,
    )
    from .evaluate import _vec_eval

    return _vec_eval(envs, act_fn, episodes=episodes, gamma=gamma)


def evaluate_policy_replica(
    pool: Union[ShardableVecPool, Sequence[MultiUserEnv]],
    policy: "ActorCriticBase",
    rngs: Sequence[np.random.Generator],
    episodes: int = 1,
    gamma: float = 1.0,
    deterministic: bool = True,
    max_steps: Optional[int] = None,
) -> np.ndarray:
    """Deprecated alias for the replica evaluation kernel.

    Use ``repro.rl.evaluate(policy, pool, rng=rngs, ...)`` instead: the
    front door wraps the identical kernel (the policy acts itself with
    one caller-owned generator per member env), so results are
    bit-identical. See :mod:`repro.rl.evaluate` for the kernel's
    sharding-invariance contract.
    """
    import warnings

    warnings.warn(
        "repro.rl.evaluate_policy_replica is deprecated; use "
        "repro.rl.evaluate(policy, envs, rng=..., ...) — the unified "
        "evaluation front door (bit-identical results)",
        DeprecationWarning,
        stacklevel=2,
    )
    from .evaluate import _replica_eval

    return _replica_eval(
        pool,
        policy,
        rngs,
        episodes=episodes,
        gamma=gamma,
        deterministic=deterministic,
        max_steps=max_steps,
    )

"""One evaluation front door: :func:`evaluate`.

Evaluation grew four entry points as the rollout engine grew modes —
``evaluate_policy`` (one env, an ``act_fn`` callable),
``evaluate_policy_vec`` (a pool, still an ``act_fn``),
``evaluate_policy_replica`` (the replica kernel: the policy acts itself
with per-env noise streams) and ``evaluate_policy_replicas`` (the
sharded-routing wrapper). They are one operation — *average discounted
per-user return of a policy over environments* — with three orthogonal
axes: who acts (a bare callable vs. the policy itself), how the envs are
driven (one at a time vs. pooled vs. sharded worker-side), and what
comes back (a scalar vs. per-env returns).

:func:`evaluate` collapses the four into a single call that dispatches
on its inputs::

    from repro.rl import evaluate

    evaluate(policy, env)                      # scalar: one env, replica kernel
    evaluate(policy, [env_a, env_b])           # per-env returns, pooled
    evaluate(policy, sharded_pool)             # evaluated inside the workers
    evaluate(act_fn, env)                      # callable protocol, one env
    evaluate(act_fn, pool, mode="vec")         # callable over a pool

Dispatch rules (``mode="auto"``):

- ``policy`` an :class:`~repro.rl.policies.ActorCriticBase` → the
  **replica** path: the policy acts itself under ``no_grad`` with one
  noise stream per member env (sharding-invariant; a
  :class:`~repro.rl.workers.ShardedVecEnvPool` is synced and evaluated
  worker-side);
- ``policy`` any other callable → the **act_fn** path: a single env runs
  the classic per-env loop (``solo``), pools/sequences run the stacked
  loop (``vec``).

The return shape follows the input: a single bare env yields a scalar
``float``; a pool or sequence yields one mean (discounted) per-user
return per member env. The old names survive as thin deprecated aliases
(``DeprecationWarning``) delegating to the exact kernels below, so alias
results are bit-identical to front-door results — enforced by
``tests/rl/test_eval_parity.py``; the pytest config escalates the
warning to an error for ``repro.*`` callers so the aliases cannot creep
back into internal code.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..envs.base import MultiUserEnv
from ..nn import no_grad
from .policies import ActorCriticBase
from .vec import BlockRNG, RNGLike, ShardableVecPool, VecEnvPool, split_rng

__all__ = ["evaluate"]

_MODES = ("auto", "solo", "vec", "replica")


# ----------------------------------------------------------------------
# kernels (internal: the public surface is ``evaluate`` + the deprecated
# aliases that delegate here)
# ----------------------------------------------------------------------
def _solo_eval(env: MultiUserEnv, act_fn, episodes: int = 1, gamma: float = 1.0) -> float:
    """Average (discounted) per-user return of ``act_fn`` on one env.

    ``act_fn(states, t)`` must return actions ``[num_users, act_dim]``. A
    new episode calls ``reset()`` and, when the callable has a ``reset``
    method (recurrent policies), resets its internal state too. ``env``
    may be a :class:`~repro.rl.vec.VecEnvPool`: pools expose the same
    step/reset interface over the stacked user axis, and their block
    structure (``group_slices``) is forwarded to group-aware policies so
    per-city context never mixes cities.
    """
    group_slices = getattr(env, "group_slices", None)
    forward_groups = group_slices is not None and hasattr(act_fn, "set_rollout_groups")
    total = 0.0
    for _ in range(episodes):
        if hasattr(act_fn, "reset"):
            act_fn.reset(env.num_users)
        if forward_groups:
            act_fn.set_rollout_groups(group_slices)
        states = env.reset()
        returns = np.zeros(env.num_users)
        discount = 1.0
        for t in range(env.horizon):
            actions = act_fn(states, t)
            states, rewards, dones, _ = env.step(actions)
            returns += discount * rewards
            discount *= gamma
            if np.all(dones):
                break
        total += float(returns.mean())
    if forward_groups:
        act_fn.set_rollout_groups(None)  # don't leak block structure
    return total / episodes


def _vec_eval(
    envs: Union[ShardableVecPool, Sequence[MultiUserEnv]],
    act_fn,
    episodes: int = 1,
    gamma: float = 1.0,
) -> np.ndarray:
    """Per-env average (discounted) per-user return, one act per step.

    The pooled counterpart of :func:`_solo_eval`: instead of looping
    cities, all cities advance together and the callable sees the
    stacked state matrix. Returns an array with one mean per-user return
    per member env.
    """
    pool = envs if isinstance(envs, ShardableVecPool) else VecEnvPool(envs)
    totals = np.zeros(pool.num_envs)
    for _ in range(episodes):
        if hasattr(act_fn, "reset"):
            act_fn.reset(pool.num_users)
        if hasattr(act_fn, "set_rollout_groups"):
            act_fn.set_rollout_groups(pool.slices)
        states = pool.reset()
        returns = np.zeros(pool.num_users)
        discount = 1.0
        step = 0
        while not pool.all_done:
            actions = act_fn(states, step)
            states, rewards, dones, _ = pool.step(actions)
            returns += discount * rewards
            discount *= gamma
            step += 1
        for index, block in enumerate(pool.slices):
            totals[index] += float(returns[block].mean())
    if hasattr(act_fn, "set_rollout_groups"):
        act_fn.set_rollout_groups(None)
    return totals / episodes


def _replica_eval(
    pool: Union[ShardableVecPool, Sequence[MultiUserEnv]],
    policy: ActorCriticBase,
    rngs: Sequence[np.random.Generator],
    episodes: int = 1,
    gamma: float = 1.0,
    deterministic: bool = True,
    max_steps: Optional[int] = None,
) -> np.ndarray:
    """Replica-side evaluation kernel: act with ``policy`` itself, per-env streams.

    The sharding-invariant counterpart of :func:`_vec_eval`: instead of
    an opaque ``act_fn`` holding one shared noise stream, the policy acts
    directly with one caller-owned generator **per member env** (wrapped in a
    :class:`BlockRNG` over the pool's blocks) and per-env context groups. Each
    env's action noise therefore comes from that env's own stream regardless
    of which other envs share the batch — so evaluating the same envs split
    across any number of shard-local pools (each with its env's generator)
    produces bit-identical per-env returns. This is the kernel both sides of
    :meth:`repro.rl.workers.ShardedVecEnvPool.evaluate_policy` run: workers
    call it over their shard with their policy replica, the degraded/in-process
    path calls it over the full pool.

    ``rngs`` objects are advanced in place (per-env stream continuity across
    multi-episode sweeps). Returns one mean (discounted) per-user return per
    member env.
    """
    if not isinstance(pool, ShardableVecPool):
        pool = VecEnvPool(pool, max_steps=max_steps)
    elif max_steps is not None:
        pool.max_steps = max_steps
    rngs = list(rngs)
    if len(rngs) != pool.num_envs:
        raise ValueError(
            f"replica evaluation needs one generator per env: "
            f"got {len(rngs)} for {pool.num_envs} envs"
        )
    block_rng = BlockRNG(rngs, pool.slices)
    totals = np.zeros(pool.num_envs)
    with no_grad():
        for _ in range(episodes):
            policy.start_rollout(pool.num_users)
            policy.set_rollout_groups(pool.slices)
            states = pool.reset()
            prev_actions = np.zeros((pool.num_users, policy.action_dim))
            returns = np.zeros(pool.num_users)
            discount = 1.0
            while not pool.all_done:
                actions, _, _ = policy.act(
                    states, prev_actions, block_rng, deterministic=deterministic
                )
                prev_actions = actions
                states, rewards, dones, _ = pool.step(actions)
                returns += discount * rewards
                discount *= gamma
            for index, block in enumerate(pool.slices):
                totals[index] += float(returns[block].mean())
    policy.set_rollout_groups(None)
    return totals / episodes


def _as_env_rngs(rng: Optional[RNGLike], num_envs: int) -> List[np.random.Generator]:
    """Normalise the front door's ``rng`` argument to one stream per env."""
    if rng is None:
        rng = np.random.default_rng(0)
    if isinstance(rng, BlockRNG):
        return list(rng.rngs)
    if isinstance(rng, np.random.Generator):
        return split_rng(rng, num_envs)
    return list(rng)


# ----------------------------------------------------------------------
# the front door
# ----------------------------------------------------------------------
def evaluate(
    policy,
    envs,
    *,
    episodes: int = 1,
    gamma: float = 1.0,
    mode: str = "auto",
    rng: Optional[RNGLike] = None,
    deterministic: bool = True,
    max_steps: Optional[int] = None,
) -> Union[float, np.ndarray]:
    """Average (discounted) per-user return of ``policy`` over ``envs``.

    The one evaluation entry point (see the module docstring for the
    dispatch table). Arguments:

    - ``policy`` — an :class:`~repro.rl.policies.ActorCriticBase`
      (replica path: the policy acts itself, ``deterministic`` and
      ``rng`` apply) or any ``act_fn(states, t) -> actions`` callable
      (classic callable protocol; ``rng``/``deterministic`` are ignored —
      the callable owns its noise).
    - ``envs`` — one :class:`~repro.envs.base.MultiUserEnv`, a sequence
      of them, a :class:`~repro.rl.vec.VecEnvPool` /
      :class:`~repro.rl.vec.ShardableVecPool`, or a
      :class:`~repro.rl.workers.ShardedVecEnvPool` (evaluated inside its
      workers via the version-stamped replica protocol).
    - ``mode`` — ``"auto"`` (dispatch on input types), ``"solo"`` (the
      per-env callable loop), ``"vec"`` (pooled callable loop) or
      ``"replica"`` (policy acts itself with per-env streams).
    - ``rng`` — replica path only: a single generator (split into
      deterministic per-env children), a per-env sequence, or a
      :class:`~repro.rl.vec.BlockRNG` (caller-owned streams, advanced in
      place). Defaults to ``default_rng(0)``.

    Returns a ``float`` for a single bare env, else an array of one mean
    (discounted) per-user return per member env. Per-env results are
    bit-identical across solo / pooled / sharded execution of the same
    envs (``tests/rl/test_eval_parity.py``).
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    from .workers import ShardedVecEnvPool  # local: workers imports this module

    is_policy = isinstance(policy, ActorCriticBase)
    is_sharded = isinstance(envs, ShardedVecEnvPool)
    is_pool = isinstance(envs, ShardableVecPool)
    is_single = isinstance(envs, MultiUserEnv) and not is_pool
    if not (is_pool or is_single):
        envs = list(envs)
        if not envs:
            raise ValueError("evaluate() needs at least one environment")

    if mode == "auto":
        if is_policy:
            mode = "replica"
        else:
            mode = "solo" if is_single else "vec"

    if mode == "replica":
        if not is_policy:
            raise TypeError(
                "mode='replica' evaluates the policy itself and needs an "
                f"ActorCriticBase, got {type(policy).__name__}"
            )
        if is_sharded:
            envs.sync_policy(policy)
            totals = envs.evaluate_policy(
                rng if rng is not None else np.random.default_rng(0),
                episodes=episodes,
                gamma=gamma,
                deterministic=deterministic,
                max_steps=max_steps,
            )
            return totals
        pool = [envs] if is_single else envs
        if not isinstance(pool, ShardableVecPool):
            pool = VecEnvPool(pool)
        totals = _replica_eval(
            pool,
            policy,
            _as_env_rngs(rng, pool.num_envs),
            episodes=episodes,
            gamma=gamma,
            deterministic=deterministic,
            max_steps=max_steps,
        )
        return float(totals[0]) if is_single else totals

    # A ShardedVecEnvPool is still a ShardableVecPool: the act_fn modes
    # drive it parent-side through the plain env protocol (the policy
    # only ever routes worker-side on the replica path).
    act_fn = (
        policy.as_act_fn(
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(0),
            deterministic=deterministic,
        )
        if is_policy
        else policy
    )
    if mode == "solo":
        if is_single or is_pool:
            return _solo_eval(envs, act_fn, episodes=episodes, gamma=gamma)
        return np.array(
            [_solo_eval(env, act_fn, episodes=episodes, gamma=gamma) for env in envs]
        )
    # mode == "vec"
    if is_single:
        return float(
            _vec_eval([envs], act_fn, episodes=episodes, gamma=gamma)[0]
        )
    return _vec_eval(envs, act_fn, episodes=episodes, gamma=gamma)

"""Generalised Advantage Estimation."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    last_values: np.ndarray,
    gamma: float,
    lam: float,
    bootstrap_last: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """GAE(γ, λ) over time-major arrays ``[T, N]``.

    ``dones[t]`` marks that user n's episode terminated *at* step t (the
    reward at t is still valid; no bootstrapping across it).

    ``bootstrap_last=True`` treats a done at the final step as a *truncation*
    rather than termination — the value of the successor state
    (``last_values``) is still bootstrapped. This matches the paper's
    T_c-truncated rollouts (Sec. IV-C), where cutting at T_c does not mean
    the task ended. Mid-sequence dones (e.g. injected by F_exec) always
    terminate.

    Returns ``(advantages, returns)`` with ``returns = advantages + values``.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=np.float64)
    last_values = np.asarray(last_values, dtype=np.float64)
    if rewards.shape != values.shape or rewards.shape != dones.shape:
        raise ValueError("rewards, values and dones must share shape [T, N]")
    steps = rewards.shape[0]
    advantages = np.zeros_like(rewards)
    next_advantage = np.zeros_like(last_values)
    next_values = last_values
    for t in reversed(range(steps)):
        non_terminal = 1.0 - dones[t]
        if t == steps - 1 and bootstrap_last:
            non_terminal = np.ones_like(non_terminal)
        delta = rewards[t] + gamma * next_values * non_terminal - values[t]
        next_advantage = delta + gamma * lam * non_terminal * next_advantage
        advantages[t] = next_advantage
        next_values = values[t]
    returns = advantages + values
    return advantages, returns


def valid_step_mask(dones: np.ndarray) -> np.ndarray:
    """Mask of steps belonging to a live episode, shape ``[T, N]``.

    A step is valid up to and *including* the first done of its column;
    everything after a termination is garbage produced by an environment
    that kept simulating (e.g. after an F_exec cut) and must not contribute
    to losses.
    """
    dones = np.asarray(dones, dtype=np.float64)
    terminated_before = np.zeros_like(dones)
    if dones.shape[0] > 1:
        terminated_before[1:] = np.maximum.accumulate(dones[:-1], axis=0)
    return 1.0 - terminated_before

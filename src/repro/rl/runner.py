"""Rollout collection: policy × environment → RolloutSegment."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..envs.base import MultiUserEnv
from ..nn import no_grad
from .buffer import RolloutSegment
from .policies import ActorCriticBase


def collect_segment(
    env: MultiUserEnv,
    policy: ActorCriticBase,
    rng: np.random.Generator,
    max_steps: Optional[int] = None,
    extras_from_info: tuple[str, ...] = (),
) -> RolloutSegment:
    """Roll ``policy`` in ``env`` for one (possibly truncated) episode.

    ``extras_from_info`` names per-user arrays from the env's info dict
    (e.g. ``"orders"``, ``"cost"``, ``"uncertainty"``) to stack into
    ``segment.extras`` for later post-processing or metrics.
    """
    with no_grad():
        return _collect_segment_impl(env, policy, rng, max_steps, extras_from_info)


def collect_segments_sequential(
    envs: Sequence[MultiUserEnv],
    policy: ActorCriticBase,
    rngs: Sequence[np.random.Generator],
    max_steps: Optional[int] = None,
    extras_from_info: tuple[str, ...] = (),
) -> List[RolloutSegment]:
    """Roll ``policy`` out env by env — the canonical reference loop.

    This is the semantics every batched/sharded collection mode must
    bit-reproduce (see :mod:`repro.rl.parity`); each env consumes its own
    policy-noise generator, exactly one per env, in env order.
    """
    if len(rngs) != len(envs):
        raise ValueError(f"expected {len(envs)} generators, got {len(rngs)}")
    return [
        collect_segment(
            env, policy, rng, max_steps=max_steps, extras_from_info=extras_from_info
        )
        for env, rng in zip(envs, rngs)
    ]


def _collect_segment_impl(
    env: MultiUserEnv,
    policy: ActorCriticBase,
    rng: np.random.Generator,
    max_steps: Optional[int],
    extras_from_info: tuple[str, ...],
) -> RolloutSegment:
    horizon = max_steps or env.horizon
    states = env.reset()
    n = env.num_users
    policy.start_rollout(n)
    prev_actions = np.zeros((n, policy.action_dim))

    seq_states: List[np.ndarray] = []
    seq_prev: List[np.ndarray] = []
    seq_actions: List[np.ndarray] = []
    seq_rewards: List[np.ndarray] = []
    seq_dones: List[np.ndarray] = []
    seq_values: List[np.ndarray] = []
    seq_log_probs: List[np.ndarray] = []
    extras: Dict[str, List[np.ndarray]] = {key: [] for key in extras_from_info}

    for _ in range(horizon):
        actions, log_probs, values = policy.act(states, prev_actions, rng)
        next_states, rewards, dones, info = env.step(actions)
        seq_states.append(states)
        seq_prev.append(prev_actions)
        seq_actions.append(actions)
        seq_rewards.append(np.asarray(rewards, dtype=np.float64))
        seq_dones.append(np.asarray(dones, dtype=np.float64))
        seq_values.append(values)
        seq_log_probs.append(log_probs)
        for key in extras_from_info:
            extras[key].append(np.asarray(info[key], dtype=np.float64))
        states = next_states
        prev_actions = actions
        if np.all(dones):
            break

    # Bootstrap value of the state after the final step (used when the
    # rollout was truncated rather than terminated).
    _, _, last_values = policy.act(states, prev_actions, rng, deterministic=True)

    return RolloutSegment(
        states=np.stack(seq_states),
        prev_actions=np.stack(seq_prev),
        actions=np.stack(seq_actions),
        rewards=np.stack(seq_rewards),
        dones=np.stack(seq_dones),
        values=np.stack(seq_values),
        log_probs=np.stack(seq_log_probs),
        last_values=last_values,
        group_id=env.group_id,
        extras={key: np.stack(value) for key, value in extras.items()},
    )

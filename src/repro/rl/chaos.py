"""Deterministic fault injection for the sharded rollout stack.

The supervision layer in :mod:`repro.rl.workers` promises that worker
crashes, hangs and stale replicas recover **bit-identically** to an
uninterrupted run. That promise is only testable if faults can be
produced on demand, at exact protocol points, reproducibly. This module
is that harness:

- :class:`FaultSpec` — one scheduled fault: *which worker*, *which
  protocol operation* (``step`` / ``reset`` / ``replica`` / ``rollout``
  / ``load`` / ``fetch`` / ``snapshot``, or ``"*"`` for any), the
  *n-th occurrence* of that operation inside the worker process, the
  fault *kind* and the *phase* (on command receipt or just before the
  reply — the latter crashes a worker that already advanced its envs,
  the harder recovery case).
- :class:`ChaosSchedule` — a picklable bundle of specs shipped to the
  workers at spawn time. Each worker keeps its own per-operation
  counters, so schedules are deterministic regardless of parent timing.
  ``persistent=True`` re-arms the schedule in respawned workers (used
  to exhaust the restart budget and force graceful degradation);
  the default one-shot schedule leaves respawned workers fault-free.
  ``ignore_sigterm=True`` makes workers ignore SIGTERM, exercising the
  supervisor's SIGKILL escalation path.

Fault kinds:

``"kill"``
    ``os._exit`` — an instant, unannounced process death (the moral
    equivalent of the OOM killer or a segfault).
``"hang"``
    Sleep far longer than any per-op deadline; the parent's
    :class:`~repro.rl.workers.FaultPolicy` deadline detects the hang and
    SIGKILLs the worker.
``"drop_reply"``
    Execute the command but never answer — a lost IPC reply. Same
    parent-side signature as a hang.
``"corrupt_stamp"``
    Execute a ``replica`` broadcast normally but corrupt the worker's
    local version stamp, so the next ``rollout`` answers stale.

:func:`truncate_file` and :func:`flip_byte` corrupt on-disk checkpoints
for the checkpoint-robustness tests (CRC32 validation in
:mod:`repro.nn.serialization` must reject both).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Protocol operations a fault can target (``"*"`` matches any).
FAULT_OPS: Tuple[str, ...] = (
    "step",
    "reset",
    "replica",
    "rollout",
    "load",
    "fetch",
    "snapshot",
    "close",
    "*",
)

#: Supported fault kinds.
FAULT_KINDS: Tuple[str, ...] = ("kill", "hang", "drop_reply", "corrupt_stamp")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault inside one worker process.

    ``at`` counts occurrences of ``op`` *within the worker process*
    (0 = the first matching command it sees). ``phase`` is ``"receive"``
    (fault before the command executes) or ``"reply"`` (execute first,
    fault before answering — the worker's envs have already advanced,
    so recovery must discard that progress and replay).
    """

    kind: str
    worker: int = 0
    op: str = "*"
    at: int = 0
    phase: str = "receive"
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind {self.kind!r} not in {FAULT_KINDS}")
        if self.op not in FAULT_OPS:
            raise ValueError(f"fault op {self.op!r} not in {FAULT_OPS}")
        if self.phase not in ("receive", "reply"):
            raise ValueError(f"fault phase {self.phase!r} must be receive|reply")
        if self.kind == "corrupt_stamp" and self.op not in ("replica", "*"):
            raise ValueError("corrupt_stamp faults target 'replica' operations")


@dataclass
class ChaosSchedule:
    """A picklable fault schedule shipped to every worker at spawn.

    The parent filters the schedule per worker (:meth:`for_worker`);
    each worker process counts its own command occurrences, fires each
    matching spec exactly once, and executes everything else normally.
    """

    specs: List[FaultSpec] = field(default_factory=list)
    #: Re-arm the schedule in respawned workers. The default (False)
    #: injects each fault once per *original* worker, so a respawn
    #: proves recovery; True keeps faulting every respawn, so the
    #: restart budget exhausts and the pool degrades in-process.
    persistent: bool = False
    #: Workers ignore SIGTERM — shutdown must escalate to SIGKILL.
    ignore_sigterm: bool = False

    def __post_init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._fired: List[bool] = [False] * len(self.specs)

    def __getstate__(self):
        return {
            "specs": list(self.specs),
            "persistent": self.persistent,
            "ignore_sigterm": self.ignore_sigterm,
        }

    def __setstate__(self, state):
        self.specs = state["specs"]
        self.persistent = state["persistent"]
        self.ignore_sigterm = state["ignore_sigterm"]
        self._counts = {}
        self._fired = [False] * len(self.specs)

    def for_worker(self, worker: int) -> Optional["ChaosSchedule"]:
        """The sub-schedule a given worker should run (None = fault-free)."""
        specs = [spec for spec in self.specs if spec.worker == worker]
        if not specs and not self.ignore_sigterm:
            return None
        return ChaosSchedule(
            specs=specs,
            persistent=self.persistent,
            ignore_sigterm=self.ignore_sigterm,
        )

    def match(self, op: str, phase: str) -> Optional[FaultSpec]:
        """The spec (if any) firing for this occurrence of ``op``.

        Counters advance once per command (on the ``receive`` phase);
        each spec fires at most once per process lifetime.
        """
        if phase == "receive":
            self._counts[op] = self._counts.get(op, 0) + 1
        count = self._counts.get(op, 0) - 1
        for index, spec in enumerate(self.specs):
            if self._fired[index] or spec.phase != phase:
                continue
            if spec.op != "*" and spec.op != op:
                continue
            if spec.at != count:
                continue
            self._fired[index] = True
            return spec
        return None


def apply_fault(spec: FaultSpec) -> str:
    """Execute a fault's process-level effect inside the worker.

    Returns the action the worker loop must take for the non-terminal
    kinds: ``"continue"`` (keep executing normally — ``hang`` ends up
    SIGKILLed by the parent before this matters) or the kind itself for
    effects the protocol loop applies (``drop_reply``,
    ``corrupt_stamp``). ``kill`` never returns.
    """
    if spec.kind == "kill":
        os._exit(13)
    if spec.kind == "hang":
        time.sleep(spec.hang_seconds)
        return "continue"
    return spec.kind


# ----------------------------------------------------------------------
# On-disk corruption helpers for checkpoint-robustness tests.
# ----------------------------------------------------------------------
def truncate_file(path, keep_fraction: float = 0.5) -> int:
    """Truncate a file to a fraction of its size (a torn write). Returns
    the new size."""
    size = os.path.getsize(path)
    new_size = max(1, int(size * keep_fraction))
    with open(path, "rb+") as handle:
        handle.truncate(new_size)
    return new_size


def flip_byte(path, offset: int = -64) -> None:
    """Flip every bit of one byte of a file (silent media corruption).

    A negative ``offset`` indexes from the end of the file — npz data
    payloads live towards the end, so the default corrupts array bytes
    rather than the zip directory.
    """
    size = os.path.getsize(path)
    position = offset % size
    with open(path, "rb+") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))


__all__ = [
    "FAULT_KINDS",
    "FAULT_OPS",
    "ChaosSchedule",
    "FaultSpec",
    "apply_fault",
    "flip_byte",
    "truncate_file",
]

"""Reinforcement-learning substrate: GAE, buffers, policies, PPO, vec rollouts."""

from .buffer import RolloutBuffer, RolloutSegment
from .gae import compute_gae, valid_step_mask
from .policies import ActorCriticBase, MLPActorCritic, RecurrentActorCritic
from .ppo import PPO, PPOConfig
from .runner import collect_segment, collect_segments_sequential
from .evaluate import evaluate
from .vec import (
    BlockRNG,
    ShardableVecPool,
    VecEnvPool,
    assemble_segments,
    collect_segments_vec,
    evaluate_policy_replica,
    evaluate_policy_vec,
    split_rng,
)
from .chaos import ChaosSchedule, FaultSpec
from .workers import (
    FaultPolicy,
    ShardedVecEnvPool,
    StaleReplicaError,
    WorkerCrashed,
    WorkerStepError,
    WorkerTimeout,
    collect_segments_shard_parallel,
    evaluate_policy_replicas,
    sharding_available,
)
from .parity import (
    ROLLOUT_MODES,
    assert_segments_identical,
    collect_rollout_mode,
    verify_rollout_parity,
    verify_training_reproducibility,
)

__all__ = [
    "ActorCriticBase",
    "BlockRNG",
    "ChaosSchedule",
    "FaultPolicy",
    "FaultSpec",
    "MLPActorCritic",
    "PPO",
    "PPOConfig",
    "ROLLOUT_MODES",
    "RecurrentActorCritic",
    "RolloutBuffer",
    "RolloutSegment",
    "ShardableVecPool",
    "ShardedVecEnvPool",
    "StaleReplicaError",
    "VecEnvPool",
    "WorkerCrashed",
    "WorkerStepError",
    "WorkerTimeout",
    "assemble_segments",
    "assert_segments_identical",
    "collect_rollout_mode",
    "collect_segment",
    "collect_segments_sequential",
    "collect_segments_shard_parallel",
    "collect_segments_vec",
    "compute_gae",
    "evaluate",
    "evaluate_policy_replica",
    "evaluate_policy_replicas",
    "evaluate_policy_vec",
    "sharding_available",
    "split_rng",
    "valid_step_mask",
    "verify_rollout_parity",
    "verify_training_reproducibility",
]

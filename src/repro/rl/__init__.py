"""Reinforcement-learning substrate: GAE, rollout buffers, policies, PPO."""

from .buffer import RolloutBuffer, RolloutSegment
from .gae import compute_gae, valid_step_mask
from .policies import ActorCriticBase, MLPActorCritic, RecurrentActorCritic
from .ppo import PPO, PPOConfig
from .runner import collect_segment

__all__ = [
    "ActorCriticBase",
    "MLPActorCritic",
    "PPO",
    "PPOConfig",
    "RecurrentActorCritic",
    "RolloutBuffer",
    "RolloutSegment",
    "collect_segment",
    "compute_gae",
    "valid_step_mask",
]

"""Reinforcement-learning substrate: GAE, buffers, policies, PPO, vec rollouts."""

from .buffer import RolloutBuffer, RolloutSegment
from .gae import compute_gae, valid_step_mask
from .policies import ActorCriticBase, MLPActorCritic, RecurrentActorCritic
from .ppo import PPO, PPOConfig
from .runner import collect_segment
from .vec import (
    BlockRNG,
    ShardableVecPool,
    VecEnvPool,
    collect_segments_vec,
    evaluate_policy_vec,
    split_rng,
)
from .workers import (
    ShardedVecEnvPool,
    WorkerCrashed,
    WorkerStepError,
    sharding_available,
)

__all__ = [
    "ActorCriticBase",
    "BlockRNG",
    "MLPActorCritic",
    "PPO",
    "PPOConfig",
    "RecurrentActorCritic",
    "RolloutBuffer",
    "RolloutSegment",
    "ShardableVecPool",
    "ShardedVecEnvPool",
    "VecEnvPool",
    "WorkerCrashed",
    "WorkerStepError",
    "collect_segment",
    "collect_segments_vec",
    "compute_gae",
    "evaluate_policy_vec",
    "sharding_available",
    "split_rng",
    "valid_step_mask",
]

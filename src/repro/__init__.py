"""repro — a full reproduction of Sim2Rec (ICDE 2023).

Sim2Rec is a simulator-based decision-making approach that optimises
real-world long-term user engagement in sequential recommender systems by
handling the reality gap of learned user simulators through zero-shot
policy transfer: an ensemble simulator set, a hierarchical
environment-parameter extractor (SADAE + LSTM) and a context-aware PPO
policy with error-guarding filters.

Subpackages
-----------
``repro.nn``        numpy autodiff + neural-network substrate
``repro.envs``      LTS (RecSim Choc/Kale), DPR (ride-hailing) and SlateRec worlds
``repro.sim``       data-driven user-simulator learning and ensembles
``repro.rl``        PPO / GAE / rollout machinery
``repro.scenarios`` registry-driven environment families (specs → populations)
``repro.core``      the Sim2Rec contribution (SADAE, extractor, trainer)
``repro.baselines`` DR-OSI, DR-UNI, DIRECT, WideDeep, DeepFM
``repro.eval``      KDE/KLD, PCA, clustering, intervention tests, probes
"""

__version__ = "1.0.0"

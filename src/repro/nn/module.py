"""Module / Parameter containers mirroring the familiar torch.nn layout.

A :class:`Module` recursively collects :class:`Parameter` tensors from its
attributes (including lists of modules), supports ``state_dict`` /
``load_state_dict`` round-trips and ``zero_grad``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad`` always on)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances (or
    lists of them) as attributes; parameter discovery walks those attributes
    in a deterministic (sorted) order so optimisers and serialisation are
    stable across runs.
    """

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for key in sorted(vars(self)):
            value = getattr(self, key)
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{path}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{index}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def num_parameters(self) -> int:
        return int(sum(param.size for param in self.parameters()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.copy()

    def copy_from(self, other: "Module") -> None:
        """Copy all parameters from a module with identical structure."""
        self.load_state_dict(other.state_dict())

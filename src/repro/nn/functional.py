"""Composite differentiable functions built on :mod:`repro.nn.tensor`.

These are the numerically careful building blocks (softmax, logsumexp,
log-softmax, smooth losses) shared by the policy, the SADAE decoders and the
supervised baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, as_tensor, concat, stack, where  # noqa: F401 (re-export)

LOG_2PI = float(np.log(2.0 * np.pi))


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The max-shift uses a detached maximum: subtracting a constant does not
    change the softmax value or its gradient.
    """
    logits = as_tensor(logits)
    shift = Tensor(logits.data.max(axis=axis, keepdims=True))
    exps = (logits - shift).exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def logsumexp(logits: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    logits = as_tensor(logits)
    shift = Tensor(logits.data.max(axis=axis, keepdims=True))
    out = (logits - shift).exp().sum(axis=axis, keepdims=True).log() + shift
    if not keepdims:
        out = out.reshape(tuple(s for i, s in enumerate(out.shape) if i != (axis % logits.ndim)))
    return out


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    logits = as_tensor(logits)
    return logits - logsumexp(logits, axis=axis, keepdims=True)


def gaussian_log_prob(x: Tensor, mean: Tensor, log_std: Tensor) -> Tensor:
    """Elementwise log N(x; mean, exp(log_std)^2)."""
    x, mean, log_std = as_tensor(x), as_tensor(mean), as_tensor(log_std)
    inv_std = (-log_std).exp()
    z = (x - mean) * inv_std
    return (z * z) * -0.5 - log_std - 0.5 * LOG_2PI


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = as_tensor(prediction) - as_tensor(target)
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss, mean over all elements."""
    diff = as_tensor(prediction) - as_tensor(target)
    abs_diff = diff.abs()
    quadratic = abs_diff.minimum(delta)
    linear = abs_diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: Tensor) -> Tensor:
    """Mean BCE computed stably from logits."""
    logits, targets = as_tensor(logits), as_tensor(targets)
    # max(x, 0) - x * t + log(1 + exp(-|x|))
    relu_term = logits.maximum(0.0)
    abs_logits = logits.abs()
    log_term = ((-abs_logits).exp() + 1.0).log()
    return (relu_term - logits * targets + log_term).mean()


def dropout_mask(shape, rate: float, rng: np.random.Generator) -> Optional[np.ndarray]:
    """Return an inverted-dropout mask, or None when rate <= 0."""
    if rate <= 0.0:
        return None
    keep = 1.0 - rate
    return (rng.random(shape) < keep).astype(np.float64) / keep

"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix."""
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def orthogonal(rng: np.random.Generator, fan_in: int, fan_out: int, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation (the PPO-friendly default for policy nets).

    The result is forced C-contiguous: the transpose below otherwise
    yields an F-ordered matrix, and BLAS gemm on a transposed-B operand
    is not row-stable across batch sizes — which would break the
    bit-equivalence of vectorized vs sequential rollouts.
    """
    raw = rng.standard_normal((max(fan_in, fan_out), min(fan_in, fan_out)))
    q, r = np.linalg.qr(raw)
    q = q * np.sign(np.diag(r))
    if fan_in < fan_out:
        q = q.T
    return np.ascontiguousarray(gain * q[:fan_in, :fan_out])


def normal(rng: np.random.Generator, fan_in: int, fan_out: int, std: float = 0.01) -> np.ndarray:
    return rng.standard_normal((fan_in, fan_out)) * std

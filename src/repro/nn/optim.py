"""Optimisers (Adam, SGD) and gradient utilities.

Optimisers expose ``state_dict`` / ``load_state_dict`` as flat
name → ndarray mappings (the same shape contract as module state dicts)
so run checkpoints (:mod:`repro.core.checkpoint`) can snapshot and
restore momentum/variance accumulators bit-exactly — a resumed run
takes the same parameter steps an unbroken one would.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from .module import Parameter


def _load_slots(
    slots: List[np.ndarray], state: Dict[str, np.ndarray], prefix: str
) -> None:
    """Copy ``state[f"{prefix}.{i}"]`` into each slot array, validating shape."""
    for index, slot in enumerate(slots):
        key = f"{prefix}.{index}"
        if key not in state:
            raise KeyError(f"optimizer state is missing {key!r}")
        value = np.asarray(state[key])
        if value.shape != slot.shape:
            raise ValueError(
                f"optimizer state {key!r} has shape {value.shape}, "
                f"expected {slot.shape} — parameter layout changed"
            )
        slot[...] = value


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so the global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging).
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


class Optimizer:
    """Base optimiser: holds the parameter list and supports zero_grad."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data = param.data - self.lr * update

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {
            "lr": np.array([self.lr], dtype=np.float64),
        }
        for index, velocity in enumerate(self._velocity):
            state[f"velocity.{index}"] = velocity.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.lr = float(np.asarray(state["lr"]).ravel()[0])
        _load_slots(self._velocity, state, "velocity")


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with optional decoupled weight decay.

    The paper trains both phases with Adam (Table II); ``weight_decay``
    implements the L2 regularisation used for SADAE learning.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {
            "step_count": np.array([self._step_count], dtype=np.int64),
            "lr": np.array([self.lr], dtype=np.float64),
        }
        for index, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{index}"] = m.copy()
            state[f"v.{index}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._step_count = int(np.asarray(state["step_count"]).ravel()[0])
        self.lr = float(np.asarray(state["lr"]).ravel()[0])
        _load_slots(self._m, state, "m")
        _load_slots(self._v, state, "v")


class LinearLRSchedule:
    """Linear learning-rate decay from ``start`` to ``end`` over ``total`` steps.

    Table II decays the policy/extractor learning rate from 1e-4 to 1e-6.
    """

    def __init__(self, optimizer: Optimizer, start: float, end: float, total: int):
        if total <= 0:
            raise ValueError("total steps must be positive")
        self.optimizer = optimizer
        self.start = start
        self.end = end
        self.total = total
        self._step_count = 0
        optimizer.lr = start

    def step(self) -> float:
        self._step_count = min(self._step_count + 1, self.total)
        fraction = self._step_count / self.total
        lr = self.start + (self.end - self.start) * fraction
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"step_count": np.array([self._step_count], dtype=np.int64)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._step_count = int(np.asarray(state["step_count"]).ravel()[0])
        # Re-derive the lr the restored step count implies (the optimiser's
        # own checkpointed lr is overwritten consistently).
        fraction = self._step_count / self.total
        self.optimizer.lr = self.start + (self.end - self.start) * fraction

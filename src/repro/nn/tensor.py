"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class used throughout the library.
It implements a dynamic computation graph: every operation on tensors whose
``requires_grad`` flag is set records a backward closure, and
:meth:`Tensor.backward` walks the graph in reverse topological order to
accumulate gradients.

The engine supports full numpy broadcasting; gradients of broadcast
operands are summed back to the operand's shape (``_unbroadcast``).

Inference fast path
-------------------
Rollouts never backpropagate, so every operation first checks whether a
graph is needed at all (``no_grad()`` active, or no operand requires
grad). On that path the op returns immediately through
:func:`_graphless` — a raw ``Tensor.__new__`` constructor that skips
``np.asarray`` validation and, crucially, never allocates the backward
closure or the parent tuple. This roughly halves the per-op cost of
policy inference and is what ``policy.act`` / ``collect_segment`` /
``evaluate_policy`` ride on.

Only the operations needed by the Sim2Rec stack are implemented, which keeps
the engine small enough to verify exhaustively with finite differences (see
``tests/nn/test_autodiff.py``).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the block (used for rollouts)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` (undo numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def as_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


def _row_stable_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """2-D matmul whose rows never depend on the batch length.

    BLAS dispatches a single-row ``[1, K] @ [K, N]`` product to gemv-style
    kernels whose last-ulp results differ from the gemm kernels used for
    M ≥ 2 — breaking the bitwise contract that evaluating one user's
    sequence alone matches that user's rows inside a stacked batch (the
    learning-side analogue of the narrow-head fix below). Duplicating the
    row forces the gemm path, whose per-row results are M-independent.
    """
    if a.ndim == 2 and b.ndim == 2 and a.shape[0] == 1:
        return np.matmul(np.repeat(a, 2, axis=0), b)[:1]
    return a @ b


def _graphless(data: np.ndarray) -> "Tensor":
    """Fast Tensor constructor for op results on the inference path.

    ``data`` must already be a float64 ndarray (op results always are);
    skips ``np.asarray`` and graph bookkeeping entirely.
    """
    out = Tensor.__new__(Tensor)
    out.data = data
    out.grad = None
    out.requires_grad = False
    out._backward = None
    out._prev = ()
    out.name = None
    return out


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array (or scalar / nested sequence) holding the value.
    requires_grad:
        When true, operations involving this tensor build a graph and
        ``backward`` accumulates into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev = _prev
        self.name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph machinery
    # ------------------------------------------------------------------
    def _needs_graph(self, other: Optional["Tensor"] = None) -> bool:
        """Whether an op on (self[, other]) must record a backward closure."""
        if not _GRAD_ENABLED:
            return False
        if self.requires_grad:
            return True
        return other is not None and other.requires_grad

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, wiring the graph if gradients are on."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (scalar outputs are the common case for
        losses); it must match this tensor's shape otherwise.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            seed = np.ones_like(self.data)
        else:
            seed = np.asarray(_as_array(grad), dtype=np.float64)
            if seed.shape != self.data.shape:
                raise ValueError(f"gradient shape {seed.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(seed)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        if not self._needs_graph(other):
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        if not self._needs_graph(other):
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        if not self._needs_graph():
            return _graphless(-self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data
        if not self._needs_graph(other):
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) - self

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        if not self._needs_graph(other):
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if not self._needs_graph():
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = _row_stable_matmul(self.data, other.data)
        if not self._needs_graph(other):
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.outer(grad, b) if a.ndim == 2 else grad[..., None] * b
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                if a.ndim == 1 and ga.ndim > 1:
                    ga = ga.sum(axis=tuple(range(ga.ndim - 1)))
                self._accumulate(_unbroadcast(ga, a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.outer(a, grad) if b.ndim == 2 else a[..., None] * grad
                elif b.ndim == 1:
                    gb = (a.reshape(-1, a.shape[-1]) * grad.reshape(-1, 1)).sum(axis=0)
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, b.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not self._needs_graph():
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not self._needs_graph():
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        if not self._needs_graph():
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not self._needs_graph():
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        if not self._needs_graph():
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        if not self._needs_graph():
            return _graphless(self.data * mask)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        if not self._needs_graph():
            return _graphless(np.abs(self.data))
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is zero outside [low, high]."""
        if not self._needs_graph():
            return _graphless(np.clip(self.data, low, high))
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(np.clip(self.data, low, high), (self,), backward)

    def maximum(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        take_self = self.data >= other.data
        out_data = np.where(take_self, self.data, other.data)
        if not self._needs_graph(other):
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * ~take_self)

        return self._make(out_data, (self, other), backward)

    def minimum(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        take_self = self.data <= other.data
        out_data = np.where(take_self, self.data, other.data)
        if not self._needs_graph(other):
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * ~take_self)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not self._needs_graph():
            return _graphless(np.asarray(out_data))

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not self._needs_graph():
            return _graphless(np.asarray(out_data))

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = self.data == out
            # Split the gradient between ties, as numpy argmax would pick one.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not self._needs_graph():
            return _graphless(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        if len(axes_tuple) == 1 and isinstance(axes_tuple[0], (tuple, list)):
            axes_tuple = tuple(axes_tuple[0])
        out_data = self.data.transpose(axes_tuple)
        if not self._needs_graph():
            return _graphless(out_data)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not self._needs_graph():
            return _graphless(np.asarray(out_data))

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)


# ----------------------------------------------------------------------
# free functions that combine several tensors
# ----------------------------------------------------------------------
def affine(x: ArrayLike, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Fused ``y = x @ W (+ b)`` — one graph node instead of two.

    The backward pass reproduces exactly the gradients the unfused
    ``__matmul__`` + ``__add__`` pair would produce, so training numbers
    are unchanged; on the inference path the whole call reduces to a
    single BLAS gemm plus an in-place bias add with no closures at all.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    w = weight.data
    if w.ndim == 2 and w.shape[1] <= 3 and x.data.ndim >= 2:
        # Narrow heads (value functions, 1-3 dim action means) dispatch
        # to BLAS gemv-style kernels whose last-ulp results depend on how
        # the batch length aligns with the kernel's row chunking —
        # breaking the bitwise sequential/vectorized rollout equivalence.
        # Per-row reductions are batch-size independent; N >= 4 gemm is
        # row-stable.
        xd = x.data
        out_data = np.stack(
            [(xd * w[:, j]).sum(axis=-1) for j in range(w.shape[1])], axis=-1
        )
    else:
        out_data = _row_stable_matmul(x.data, w)
    if bias is not None:
        bias = as_tensor(bias)
        out_data += bias.data
    requires = _GRAD_ENABLED and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    if not requires:
        return _graphless(out_data)

    def backward(grad: np.ndarray) -> None:
        a, b = x.data, weight.data
        if x.requires_grad:
            if b.ndim == 1:
                ga = np.outer(grad, b) if a.ndim == 2 else grad[..., None] * b
            else:
                ga = grad @ np.swapaxes(b, -1, -2)
            if a.ndim == 1 and ga.ndim > 1:
                ga = ga.sum(axis=tuple(range(ga.ndim - 1)))
            x._accumulate(_unbroadcast(ga, a.shape))
        if weight.requires_grad:
            if a.ndim == 1:
                gb = np.outer(a, grad) if b.ndim == 2 else a[..., None] * grad
            elif b.ndim == 1:
                gb = (a.reshape(-1, a.shape[-1]) * grad.reshape(-1, 1)).sum(axis=0)
            else:
                gb = np.swapaxes(a, -1, -2) @ grad
            weight._accumulate(_unbroadcast(gb, b.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(_unbroadcast(grad, bias.data.shape))

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor(out_data, requires_grad=True, _prev=parents)
    out._backward = backward
    return out


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    if not requires:
        return _graphless(out_data)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    out = Tensor(out_data, requires_grad=True, _prev=tuple(tensors))
    out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    if not requires:
        return _graphless(out_data)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for tensor, g in zip(tensors, moved):
            if tensor.requires_grad:
                tensor._accumulate(g)

    out = Tensor(out_data, requires_grad=True, _prev=tuple(tensors))
    out._backward = backward
    return out


def tile_rows(x: Tensor, counts: Sequence[int]) -> Tensor:
    """Repeat each row of ``x`` (shape ``[K, d]``) ``counts[k]`` times.

    Returns a ``[sum(counts), d]`` tensor whose rows
    ``offset_k .. offset_k + counts[k]`` all equal ``x[k]`` — the batched
    generalisation of ``concat([row] * n, axis=0)`` used to broadcast one
    group-level vector (a SADAE context υ_t, a decoded distribution
    parameter ψ) over that group's users. The forward values are exactly
    ``np.repeat``, so they are bit-identical to the concat-based tiling;
    the backward pass sums each output row's gradient back to its source
    row in one ``np.add.reduceat`` instead of one closure per user.
    """
    x = as_tensor(x)
    counts_arr = np.asarray(list(counts), dtype=np.int64)
    rows = x.data.shape[0] if x.data.ndim >= 1 else None
    if counts_arr.shape[0] != rows:
        raise ValueError(
            f"tile_rows needs one count per row: {counts_arr.shape[0]} counts "
            f"for {rows if rows is not None else 'a 0-d tensor with no'} rows"
        )
    out_data = np.repeat(x.data, counts_arr, axis=0)
    if not x._needs_graph():
        return _graphless(out_data)
    offsets = np.concatenate([[0], np.cumsum(counts_arr)[:-1]])

    def backward(grad: np.ndarray) -> None:
        if np.any(counts_arr == 0):
            # reduceat misbehaves on empty slices; fall back to per-row sums
            full = np.zeros_like(x.data)
            start = 0
            for row, count in enumerate(counts_arr):
                full[row] = grad[start : start + count].sum(axis=0)
                start += count
            x._accumulate(full)
        else:
            x._accumulate(np.add.reduceat(grad, offsets, axis=0))

    out = Tensor(out_data, requires_grad=True, _prev=(x,))
    out._backward = backward
    return out


def where(condition: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select; gradients flow only through the chosen branch."""
    cond = _as_array(condition).astype(bool)
    a_t, b_t = as_tensor(a), as_tensor(b)
    out_data = np.where(cond, a_t.data, b_t.data)
    requires = _GRAD_ENABLED and (a_t.requires_grad or b_t.requires_grad)
    if not requires:
        return _graphless(out_data)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(grad * cond)
        if b_t.requires_grad:
            b_t._accumulate(grad * ~cond)

    out = Tensor(out_data, requires_grad=True, _prev=(a_t, b_t))
    out._backward = backward
    return out

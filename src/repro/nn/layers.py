"""Feed-forward layers: Linear, MLP, LayerNorm, Embedding."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from . import init as initializers
from .module import Module, Parameter
from .tensor import Tensor, affine, as_tensor

Activation = Callable[[Tensor], Tensor]


# Module-level functions rather than lambdas: modules keep a reference to
# their activation, and named functions keep every model (and everything
# holding one, e.g. simulator-backed envs shipped to rollout worker
# processes) picklable.
def _tanh(x: Tensor) -> Tensor:
    return x.tanh()


def _relu(x: Tensor) -> Tensor:
    return x.relu()


def _sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def _identity(x: Tensor) -> Tensor:
    return x


ACTIVATIONS: dict[str, Activation] = {
    "tanh": _tanh,
    "relu": _relu,
    "sigmoid": _sigmoid,
    "identity": _identity,
}


def get_activation(name: str) -> Activation:
    """Look up an activation function by name (raises KeyError on typos)."""
    return ACTIVATIONS[name]


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: str = "xavier",
        gain: float = 1.0,
        bias: bool = True,
    ):
        self.in_features = in_features
        self.out_features = out_features
        if init == "xavier":
            weight = initializers.xavier_uniform(rng, in_features, out_features, gain)
        elif init == "orthogonal":
            weight = initializers.orthogonal(rng, in_features, out_features, gain)
        elif init == "normal":
            weight = initializers.normal(rng, in_features, out_features, std=gain)
        else:
            raise ValueError(f"unknown init scheme: {init}")
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        # Fused y = x W + b: one graph node (or none on the inference
        # fast path) instead of a matmul node plus an add node.
        return affine(x, self.weight, self.bias)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden activation.

    ``sizes`` is the full list of layer widths, e.g. ``[in, 64, 64, out]``.
    The output layer has no activation unless ``out_activation`` is given.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "tanh",
        out_activation: Optional[str] = None,
        init: str = "orthogonal",
        out_gain: float = 1.0,
    ):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.sizes = list(sizes)
        self.activation = get_activation(activation)
        self.out_activation = get_activation(out_activation) if out_activation else None
        gain = np.sqrt(2.0) if activation == "relu" else 1.0
        self.layers = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            is_last = index == len(sizes) - 2
            layer_gain = out_gain if is_last else gain
            self.layers.append(Linear(fan_in, fan_out, rng, init=init, gain=layer_gain))

    def __call__(self, x: Tensor) -> Tensor:
        out = as_tensor(x)
        for index, layer in enumerate(self.layers):
            out = layer(out)
            if index < len(self.layers) - 1:
                out = self.activation(out)
        if self.out_activation is not None:
            out = self.out_activation(out)
        return out


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, features: int, eps: float = 1e-5):
        self.eps = eps
        self.gamma = Parameter(np.ones(features), name="gamma")
        self.beta = Parameter(np.zeros(features), name="beta")

    def __call__(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors (used by DeepFM)."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator, std: float = 0.01):
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.standard_normal((num_embeddings, dim)) * std, name="weight")

    def __call__(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if np.any(ids < 0) or np.any(ids >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[ids]

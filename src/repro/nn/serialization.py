"""Save / load module parameters as ``.npz`` archives.

Two transports share the same archive format:

- :func:`save_module` / :func:`load_module` — on-disk checkpoints;
- :func:`state_to_bytes` / :func:`state_from_bytes` — in-memory archives
  used for the per-iteration policy-parameter broadcast to rollout
  workers (:meth:`repro.rl.workers.ShardedVecEnvPool.sync_policy`).
  The byte payload is a plain npz (no pickled objects), so a replica
  that round-trips through it reproduces the source arrays bit for bit.

Every archive written by :func:`state_to_bytes` carries a CRC32 of its
contents under the reserved key ``__crc32__``; :func:`state_from_bytes`
recomputes and verifies it, so a torn or bit-flipped replica broadcast
or checkpoint fails loudly with :class:`StateChecksumError` instead of
loading garbage weights. Archives written before the checksum existed
(no ``__crc32__`` entry) still load.

:func:`save_state` / :func:`load_state` put the same checksummed archive
on disk **atomically** (write to a temp file in the target directory,
fsync, then ``os.replace``), so a crash mid-write can never leave a
half-written checkpoint under the final name — the previous checkpoint
survives intact. This is the transport used by
:mod:`repro.core.checkpoint` for run checkpoint/resume.
"""

from __future__ import annotations

import io
import os
import tempfile
import zlib
from typing import Dict, Union

import numpy as np

from .module import Module

PathLike = Union[str, os.PathLike]

#: Reserved archive key holding the CRC32 of every other entry.
CHECKSUM_KEY = "__crc32__"


class StateChecksumError(ValueError):
    """A state archive's CRC32 does not match its contents (corruption)."""


def _state_crc32(state: Dict[str, np.ndarray]) -> int:
    """CRC32 over every entry's name, dtype, shape and raw bytes (sorted)."""
    crc = 0
    for key in sorted(state):
        value = np.ascontiguousarray(state[key])
        header = f"{key}|{value.dtype.str}|{value.shape}".encode("utf8")
        crc = zlib.crc32(header, crc)
        crc = zlib.crc32(value.tobytes(), crc)
    return crc & 0xFFFFFFFF


def save_module(module: Module, path: PathLike) -> None:
    """Write all named parameters of ``module`` to ``path`` (npz)."""
    state = module.state_dict()
    # npz keys cannot contain '/', module paths use '.', which is fine.
    np.savez(path, **state)


def load_module(module: Module, path: PathLike) -> None:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)


def state_to_bytes(state: Dict[str, np.ndarray]) -> bytes:
    """Serialise a name → array mapping to an in-memory npz archive.

    Values round-trip losslessly through :func:`state_from_bytes`; no
    pickling is involved, so the payload is safe to ship across process
    boundaries and its size is a faithful measure of the parameter
    volume being broadcast. A CRC32 of the contents rides along under
    :data:`CHECKSUM_KEY` and is verified on load.
    """
    if CHECKSUM_KEY in state:
        raise ValueError(f"state key {CHECKSUM_KEY!r} is reserved for the checksum")
    arrays = {key: np.asarray(value) for key, value in state.items()}
    checksum = np.array([_state_crc32(arrays)], dtype=np.uint32)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays, **{CHECKSUM_KEY: checksum})
    return buffer.getvalue()


def state_from_bytes(payload: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`; verifies the embedded CRC32.

    Raises :class:`StateChecksumError` when the archive's contents do
    not hash to the stored checksum — a torn write, truncated pipe
    payload or flipped bit must never load as plausible weights — and
    also when the payload is not even a readable npz (truncation often
    destroys the zip directory before the checksum can be compared).
    Archives without a checksum entry (written by older versions) load
    unverified.
    """
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            state = {key: archive[key] for key in archive.files}
    except StateChecksumError:
        raise
    except Exception as error:
        # Corruption can land anywhere in the zip structure, so the
        # parse failures are legion (BadZipFile, zlib.error, KeyError,
        # NotImplementedError on mangled flag bits, ...) — normalise
        # them all to the one corruption signal callers handle.
        raise StateChecksumError(
            f"state archive is unreadable ({error!r}) — truncated or corrupt"
        ) from None
    stored = state.pop(CHECKSUM_KEY, None)
    if stored is not None:
        expected = int(np.asarray(stored).ravel()[0])
        actual = _state_crc32(state)
        if actual != expected:
            raise StateChecksumError(
                f"state archive checksum mismatch: stored crc32={expected:#010x} "
                f"but contents hash to {actual:#010x} — the archive is corrupt "
                "(torn write or bit flip); refusing to load garbage weights"
            )
    return state


def save_state(path: PathLike, state: Dict[str, np.ndarray]) -> None:
    """Atomically write a checksummed state archive to ``path``.

    The archive is written to a temporary file in the destination
    directory, flushed and fsynced, then moved over ``path`` with
    ``os.replace`` — readers always see either the previous complete
    archive or the new complete archive, never a torn mix.
    """
    payload = state_to_bytes(state)
    directory = os.path.dirname(os.fspath(path)) or "."
    fd, temp_path = tempfile.mkstemp(prefix=".state-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except FileNotFoundError:
            pass
        raise


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an archive written by :func:`save_state` (CRC32-verified)."""
    with open(path, "rb") as handle:
        payload = handle.read()
    return state_from_bytes(payload)

"""Save / load module parameters as ``.npz`` archives.

Two transports share the same archive format:

- :func:`save_module` / :func:`load_module` — on-disk checkpoints;
- :func:`state_to_bytes` / :func:`state_from_bytes` — in-memory archives
  used for the per-iteration policy-parameter broadcast to rollout
  workers (:meth:`repro.rl.workers.ShardedVecEnvPool.sync_policy`).
  The byte payload is a plain npz (no pickled objects), so a replica
  that round-trips through it reproduces the source arrays bit for bit.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Union

import numpy as np

from .module import Module

PathLike = Union[str, os.PathLike]


def save_module(module: Module, path: PathLike) -> None:
    """Write all named parameters of ``module`` to ``path`` (npz)."""
    state = module.state_dict()
    # npz keys cannot contain '/', module paths use '.', which is fine.
    np.savez(path, **state)


def load_module(module: Module, path: PathLike) -> None:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)


def state_to_bytes(state: Dict[str, np.ndarray]) -> bytes:
    """Serialise a name → array mapping to an in-memory npz archive.

    Values round-trip losslessly through :func:`state_from_bytes`; no
    pickling is involved, so the payload is safe to ship across process
    boundaries and its size is a faithful measure of the parameter
    volume being broadcast.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **{key: np.asarray(value) for key, value in state.items()})
    return buffer.getvalue()


def state_from_bytes(payload: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`."""
    with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}

"""Save / load module parameters as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .module import Module

PathLike = Union[str, os.PathLike]


def save_module(module: Module, path: PathLike) -> None:
    """Write all named parameters of ``module`` to ``path`` (npz)."""
    state = module.state_dict()
    # npz keys cannot contain '/', module paths use '.', which is fine.
    np.savez(path, **state)


def load_module(module: Module, path: PathLike) -> None:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)

"""Recurrent layers: LSTM and GRU cells plus a sequence-level LSTM.

The environment-parameter extractor φ in Sim2Rec is a single-layer LSTM
(Table II); the DR-OSI baseline uses the same cell. Sequences are unrolled
step by step to build the autodiff graph (full backpropagation through
time).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init as initializers
from .module import Module, Parameter
from .tensor import Tensor, as_tensor, concat, stack


class LSTMCell(Module):
    """A standard LSTM cell.

    Gates follow the usual ordering [input, forget, cell, output]; the forget
    gate bias is initialised to 1 to ease gradient flow early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            initializers.xavier_uniform(rng, input_size, 4 * hidden_size), name="weight_ih"
        )
        self.weight_hh = Parameter(
            initializers.orthogonal(rng, hidden_size, 4 * hidden_size), name="weight_hh"
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias, name="bias")

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())

    def __call__(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        h_prev, c_prev = state
        x = as_tensor(x)
        gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, (h_new, c_new)


class GRUCell(Module):
    """A GRU cell (provided for the RNN [19] variant used in related work)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            initializers.xavier_uniform(rng, input_size, 3 * hidden_size), name="weight_ih"
        )
        self.weight_hh = Parameter(
            initializers.orthogonal(rng, hidden_size, 3 * hidden_size), name="weight_hh"
        )
        self.bias = Parameter(np.zeros(3 * hidden_size), name="bias")

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))

    def __call__(self, x: Tensor, h_prev: Tensor) -> Tensor:
        x = as_tensor(x)
        hs = self.hidden_size
        gates_x = x @ self.weight_ih + self.bias
        gates_h = h_prev @ self.weight_hh
        r_gate = (gates_x[:, :hs] + gates_h[:, :hs]).sigmoid()
        z_gate = (gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs]).sigmoid()
        n_gate = (gates_x[:, 2 * hs :] + r_gate * gates_h[:, 2 * hs :]).tanh()
        return (1.0 - z_gate) * n_gate + z_gate * h_prev


class LSTM(Module):
    """Run an :class:`LSTMCell` over a time-major sequence.

    Input shape ``[T, batch, input_size]``; returns the stacked hidden states
    ``[T, batch, hidden_size]`` and the final (h, c) state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.cell = LSTMCell(input_size, hidden_size, rng)

    @property
    def hidden_size(self) -> int:
        return self.cell.hidden_size

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        return self.cell.initial_state(batch)

    def __call__(
        self,
        sequence: Tensor,
        state: Optional[Tuple[Tensor, Tensor]] = None,
        reset_mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        sequence = as_tensor(sequence)
        steps, batch = sequence.shape[0], sequence.shape[1]
        if state is None:
            state = self.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):
            if reset_mask is not None:
                keep = Tensor(1.0 - reset_mask[t][:, None])
                state = (state[0] * keep, state[1] * keep)
            h, state = self.cell(sequence[t], state)
            outputs.append(h)
        return stack(outputs, axis=0), state

"""Recurrent layers: LSTM and GRU cells plus a sequence-level LSTM.

The environment-parameter extractor φ in Sim2Rec is a single-layer LSTM
(Table II); the DR-OSI baseline uses the same cell. Sequences are unrolled
step by step to build the autodiff graph (full backpropagation through
time).

Inference fast path
-------------------
Rollouts advance the cell once per environment step with gradients
disabled, so both cells implement a graph-free ``_fast_forward`` used
whenever ``no_grad()`` is active: gate pre-activations are computed with
raw BLAS calls into a preallocated per-batch scratch buffer (reused
across timesteps), and the nonlinearities run in place on views of that
buffer. The arithmetic replicates the autodiff path operation-for-
operation, so the produced hidden states are bit-identical to the graph
path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from . import init as initializers
from .module import Module, Parameter
from .tensor import (
    Tensor,
    _graphless,
    _row_stable_matmul,
    as_tensor,
    is_grad_enabled,
    stack,
)


def _sigmoid_(values: np.ndarray) -> np.ndarray:
    """In-place sigmoid replicating ``Tensor.sigmoid`` numerics exactly."""
    np.clip(values, -60.0, 60.0, out=values)
    np.negative(values, out=values)
    np.exp(values, out=values)
    values += 1.0
    np.reciprocal(values, out=values)
    return values


def _as_data(x) -> np.ndarray:
    if isinstance(x, Tensor):
        return x.data
    return np.asarray(x, dtype=np.float64)


class LSTMCell(Module):
    """A standard LSTM cell.

    Gates follow the usual ordering [input, forget, cell, output]; the forget
    gate bias is initialised to 1 to ease gradient flow early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            initializers.xavier_uniform(rng, input_size, 4 * hidden_size), name="weight_ih"
        )
        self.weight_hh = Parameter(
            initializers.orthogonal(rng, hidden_size, 4 * hidden_size), name="weight_hh"
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias, name="bias")
        self._scratch: Dict[int, np.ndarray] = {}

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())

    def _gates_scratch(self, batch: int) -> np.ndarray:
        buf = self._scratch.get(batch)
        if buf is None:
            # Keep at most one buffer: rollout batch sizes are stable, and a
            # stray probe with a different batch must not leak memory.
            self._scratch.clear()
            buf = np.empty((batch, 4 * self.hidden_size))
            self._scratch[batch] = buf
        return buf

    def _fast_forward(self, x, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        h_prev, c_prev = state
        xd = _as_data(x)
        hd, cd = _as_data(h_prev), _as_data(c_prev)
        hs = self.hidden_size
        gates = self._gates_scratch(xd.shape[0])
        if xd.shape[0] == 1:
            # Single-row batches replicate the graph path's row-stable
            # matmul (gemv results differ from gemm at the last ulp).
            gates[:] = _row_stable_matmul(xd, self.weight_ih.data)
            gates += _row_stable_matmul(hd, self.weight_hh.data)
        else:
            np.matmul(xd, self.weight_ih.data, out=gates)
            gates += hd @ self.weight_hh.data
        gates += self.bias.data
        i_gate = _sigmoid_(gates[:, 0 * hs : 1 * hs])
        f_gate = _sigmoid_(gates[:, 1 * hs : 2 * hs])
        g_gate = np.tanh(gates[:, 2 * hs : 3 * hs])
        o_gate = _sigmoid_(gates[:, 3 * hs : 4 * hs])
        c_new = f_gate * cd
        c_new += i_gate * g_gate
        h_new = o_gate * np.tanh(c_new)
        h_t = _graphless(h_new)
        return h_t, (h_t, _graphless(c_new))

    def __call__(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        if not is_grad_enabled():
            return self._fast_forward(x, state)
        h_prev, c_prev = state
        x = as_tensor(x)
        gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, (h_new, c_new)


class GRUCell(Module):
    """A GRU cell (provided for the RNN [19] variant used in related work)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            initializers.xavier_uniform(rng, input_size, 3 * hidden_size), name="weight_ih"
        )
        self.weight_hh = Parameter(
            initializers.orthogonal(rng, hidden_size, 3 * hidden_size), name="weight_hh"
        )
        self.bias = Parameter(np.zeros(3 * hidden_size), name="bias")
        self._scratch: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))

    def _gates_scratch(self, batch: int) -> Tuple[np.ndarray, np.ndarray]:
        bufs = self._scratch.get(batch)
        if bufs is None:
            self._scratch.clear()
            bufs = (
                np.empty((batch, 3 * self.hidden_size)),
                np.empty((batch, 3 * self.hidden_size)),
            )
            self._scratch[batch] = bufs
        return bufs

    def _fast_forward(self, x, h_prev) -> Tensor:
        xd = _as_data(x)
        hd = _as_data(h_prev)
        hs = self.hidden_size
        gates_x, gates_h = self._gates_scratch(xd.shape[0])
        if xd.shape[0] == 1:
            # See LSTMCell._fast_forward: keep single-row batches on the
            # row-stable gemm path.
            gates_x[:] = _row_stable_matmul(xd, self.weight_ih.data)
            gates_h[:] = _row_stable_matmul(hd, self.weight_hh.data)
        else:
            np.matmul(xd, self.weight_ih.data, out=gates_x)
            np.matmul(hd, self.weight_hh.data, out=gates_h)
        gates_x += self.bias.data
        r_gate = _sigmoid_(gates_x[:, :hs].__iadd__(gates_h[:, :hs]))
        z_gate = _sigmoid_(gates_x[:, hs : 2 * hs].__iadd__(gates_h[:, hs : 2 * hs]))
        n_pre = gates_x[:, 2 * hs :]
        n_pre += r_gate * gates_h[:, 2 * hs :]
        n_gate = np.tanh(n_pre)
        h_new = (1.0 - z_gate) * n_gate
        h_new += z_gate * hd
        return _graphless(h_new)

    def __call__(self, x: Tensor, h_prev: Tensor) -> Tensor:
        if not is_grad_enabled():
            return self._fast_forward(x, h_prev)
        x = as_tensor(x)
        hs = self.hidden_size
        gates_x = x @ self.weight_ih + self.bias
        gates_h = h_prev @ self.weight_hh
        r_gate = (gates_x[:, :hs] + gates_h[:, :hs]).sigmoid()
        z_gate = (gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs]).sigmoid()
        n_gate = (gates_x[:, 2 * hs :] + r_gate * gates_h[:, 2 * hs :]).tanh()
        return (1.0 - z_gate) * n_gate + z_gate * h_prev


class LSTM(Module):
    """Run an :class:`LSTMCell` over a time-major sequence.

    Input shape ``[T, batch, input_size]``; returns the stacked hidden states
    ``[T, batch, hidden_size]`` and the final (h, c) state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.cell = LSTMCell(input_size, hidden_size, rng)

    @property
    def hidden_size(self) -> int:
        return self.cell.hidden_size

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        return self.cell.initial_state(batch)

    def __call__(
        self,
        sequence: Tensor,
        state: Optional[Tuple[Tensor, Tensor]] = None,
        reset_mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        sequence = as_tensor(sequence)
        steps, batch = sequence.shape[0], sequence.shape[1]
        if state is None:
            state = self.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):
            if reset_mask is not None:
                keep = Tensor(1.0 - reset_mask[t][:, None])
                state = (state[0] * keep, state[1] * keep)
            h, state = self.cell(sequence[t], state)
            outputs.append(h)
        return stack(outputs, axis=0), state

"""Differentiable probability distributions.

Used by the Gaussian policy head (PPO), the SADAE encoder/decoders
(reparameterised sampling, Theorem 4.1 likelihoods) and the categorical
decoders for discrete state features in DPR.
"""

from __future__ import annotations

import numpy as np

from .functional import LOG_2PI, gaussian_log_prob, log_softmax, softmax
from .tensor import Tensor, as_tensor


class DiagGaussian:
    """Diagonal Gaussian with differentiable mean / log-std.

    ``mean`` and ``log_std`` broadcast against each other; ``log_std`` is
    clipped into a sane range at construction to keep likelihoods finite.
    """

    LOG_STD_MIN = -10.0
    LOG_STD_MAX = 4.0

    def __init__(self, mean: Tensor, log_std: Tensor):
        self.mean = as_tensor(mean)
        self.log_std = as_tensor(log_std).clip(self.LOG_STD_MIN, self.LOG_STD_MAX)

    @property
    def std(self) -> Tensor:
        return self.log_std.exp()

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a sample (no gradient; use :meth:`rsample` for reparam)."""
        noise = rng.standard_normal(np.broadcast_shapes(self.mean.shape, self.log_std.shape))
        return self.mean.data + np.exp(self.log_std.data) * noise

    def rsample(self, rng: np.random.Generator) -> Tensor:
        """Reparameterised sample: gradients flow to mean and log_std."""
        noise = rng.standard_normal(np.broadcast_shapes(self.mean.shape, self.log_std.shape))
        return self.mean + self.std * Tensor(noise)

    def log_prob(self, value) -> Tensor:
        """Sum of per-dimension log densities over the last axis."""
        per_dim = gaussian_log_prob(as_tensor(value), self.mean, self.log_std)
        return per_dim.sum(axis=-1)

    def entropy(self) -> Tensor:
        log_std = self.log_std
        if log_std.shape != self.mean.shape:
            log_std = log_std + self.mean * 0.0  # broadcast to event shape
        return (log_std + 0.5 * (1.0 + LOG_2PI)).sum(axis=-1)

    def kl(self, other: "DiagGaussian") -> Tensor:
        """KL(self || other), summed over the last axis (analytic)."""
        var_ratio = ((self.log_std - other.log_std) * 2.0).exp()
        mean_term = ((self.mean - other.mean) * (-other.log_std).exp()) ** 2.0
        per_dim = (var_ratio + mean_term - 1.0) * 0.5 - (self.log_std - other.log_std)
        return per_dim.sum(axis=-1)

    def mode(self) -> np.ndarray:
        return self.mean.data.copy()


class Categorical:
    """Categorical distribution parameterised by logits (last axis)."""

    def __init__(self, logits: Tensor):
        self.logits = as_tensor(logits)

    def probs(self) -> Tensor:
        return softmax(self.logits, axis=-1)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        probs = self.probs().data
        flat = probs.reshape(-1, probs.shape[-1])
        cumulative = np.cumsum(flat, axis=-1)
        draws = rng.random((flat.shape[0], 1))
        indices = (draws > cumulative).sum(axis=-1)
        return indices.reshape(probs.shape[:-1])

    def log_prob(self, value) -> Tensor:
        log_probs = log_softmax(self.logits, axis=-1)
        indices = np.asarray(value, dtype=np.int64)
        if log_probs.ndim == 1:
            return log_probs[int(indices)]
        flat = log_probs.reshape(-1, log_probs.shape[-1])
        rows = np.arange(flat.shape[0])
        picked = flat[rows, indices.reshape(-1)]
        return picked.reshape(indices.shape)

    def entropy(self) -> Tensor:
        log_probs = log_softmax(self.logits, axis=-1)
        return -(log_probs.exp() * log_probs).sum(axis=-1)

    def kl(self, other: "Categorical") -> Tensor:
        log_p = log_softmax(self.logits, axis=-1)
        log_q = log_softmax(other.logits, axis=-1)
        return (log_p.exp() * (log_p - log_q)).sum(axis=-1)

    def mode(self) -> np.ndarray:
        return np.argmax(self.logits.data, axis=-1)


class Bernoulli:
    """Bernoulli distribution parameterised by a logit."""

    def __init__(self, logits: Tensor):
        self.logits = as_tensor(logits)

    def probs(self) -> Tensor:
        return self.logits.sigmoid()

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return (rng.random(self.logits.shape) < self.probs().data).astype(np.float64)

    def log_prob(self, value) -> Tensor:
        value = as_tensor(value)
        # log p = x*log(sigmoid) + (1-x)*log(1-sigmoid), computed stably.
        relu_term = self.logits.maximum(0.0)
        abs_logits = self.logits.abs()
        log_term = ((-abs_logits).exp() + 1.0).log()
        return self.logits * value - relu_term - log_term

    def entropy(self) -> Tensor:
        p = self.probs()
        eps = 1e-12
        return -(p * (p + eps).log() + (1.0 - p) * (1.0 - p + eps).log())


def product_of_gaussians(means: Tensor, log_stds: Tensor, axis: int = 0) -> DiagGaussian:
    """Closed-form product of independent Gaussian factors along ``axis``.

    This implements Eq. (6) of the paper: ``q(υ|X) = Π_i q(υ|s_i, a_i)``.
    Each factor contributes precision ``1/σ_i²``; the product is Gaussian
    with precision ``Σ 1/σ_i²`` and precision-weighted mean [52].

    The result drops ``axis``, keeping gradients to every factor.
    """
    means = as_tensor(means)
    log_stds = as_tensor(log_stds).clip(DiagGaussian.LOG_STD_MIN, DiagGaussian.LOG_STD_MAX)
    precisions = (log_stds * -2.0).exp()
    total_precision = precisions.sum(axis=axis)
    product_mean = (means * precisions).sum(axis=axis) / total_precision
    product_log_std = total_precision.log() * -0.5
    return DiagGaussian(product_mean, product_log_std)

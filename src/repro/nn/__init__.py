"""A minimal, fully-tested neural-network library on numpy.

The Sim2Rec stack (PPO policy, LSTM extractor, SADAE) and every baseline
are built on this package. Gradients come from the reverse-mode autodiff
engine in :mod:`repro.nn.tensor`, verified against finite differences.
"""

from .distributions import Bernoulli, Categorical, DiagGaussian, product_of_gaussians
from .functional import (
    LOG_2PI,
    binary_cross_entropy_with_logits,
    gaussian_log_prob,
    huber_loss,
    log_softmax,
    logsumexp,
    mse_loss,
    softmax,
)
from .layers import ACTIVATIONS, Embedding, LayerNorm, Linear, MLP, get_activation
from .module import Module, Parameter
from .optim import Adam, LinearLRSchedule, Optimizer, SGD, clip_grad_norm
from .recurrent import GRUCell, LSTM, LSTMCell
from .serialization import (
    StateChecksumError,
    load_module,
    load_state,
    save_module,
    save_state,
    state_from_bytes,
    state_to_bytes,
)
from .tensor import (
    Tensor,
    affine,
    as_tensor,
    concat,
    is_grad_enabled,
    no_grad,
    stack,
    tile_rows,
    where,
)

__all__ = [
    "ACTIVATIONS",
    "Adam",
    "Bernoulli",
    "Categorical",
    "DiagGaussian",
    "Embedding",
    "GRUCell",
    "LOG_2PI",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Linear",
    "LinearLRSchedule",
    "MLP",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "StateChecksumError",
    "Tensor",
    "affine",
    "as_tensor",
    "binary_cross_entropy_with_logits",
    "clip_grad_norm",
    "concat",
    "gaussian_log_prob",
    "get_activation",
    "huber_loss",
    "is_grad_enabled",
    "load_module",
    "load_state",
    "log_softmax",
    "logsumexp",
    "mse_loss",
    "no_grad",
    "product_of_gaussians",
    "save_module",
    "save_state",
    "softmax",
    "stack",
    "state_from_bytes",
    "state_to_bytes",
    "tile_rows",
    "where",
]

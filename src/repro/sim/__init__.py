"""Data-driven user-simulator stack: datasets, learners, ensembles, wrappers."""

from .dataset import GroupTrajectories, TrajectoryDataset
from .ensemble import SimulatorEnsemble, build_simulator_set
from .env_wrapper import SimulatedDPREnv, make_simulated_pool
from .learner import (
    SimulatorLearnerConfig,
    UserSimulator,
    heldout_log_likelihood,
    train_user_simulator,
)
from .uncertainty import (
    UNCERTAINTY_ESTIMATORS,
    get_uncertainty_estimator,
    max_deviation,
    mean_deviation,
    pairwise_disagreement,
)

__all__ = [
    "GroupTrajectories",
    "UNCERTAINTY_ESTIMATORS",
    "get_uncertainty_estimator",
    "max_deviation",
    "mean_deviation",
    "pairwise_disagreement",
    "SimulatedDPREnv",
    "SimulatorEnsemble",
    "SimulatorLearnerConfig",
    "TrajectoryDataset",
    "UserSimulator",
    "build_simulator_set",
    "heldout_log_likelihood",
    "make_simulated_pool",
    "train_user_simulator",
]

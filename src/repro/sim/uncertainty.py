"""Alternative ensemble-uncertainty estimators.

The paper's Sec. VI names "more theoretical solutions ... e.g. uncertainty
evaluation" as future work; its implementation uses mean deviation from
the ensemble consensus. This module provides that estimator plus two
standard alternatives from the offline model-based RL literature, behind a
common interface, so the penalty choice becomes a configurable design
axis:

- ``mean_deviation`` — E_j ‖μ_j − μ̄‖₂ (the paper's U, Sec. V-C2);
- ``max_deviation``  — max_j ‖μ_j − μ̄‖₂ (MOPO-style worst-case [37]);
- ``pairwise``       — mean pairwise distance between member predictions
  (an unbiased disagreement measure that does not privilege the mean).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .ensemble import SimulatorEnsemble

UncertaintyFn = Callable[[SimulatorEnsemble, np.ndarray, np.ndarray], np.ndarray]


def _continuous_predictions(
    ensemble: SimulatorEnsemble, states: np.ndarray, actions: np.ndarray
) -> np.ndarray:
    """Member predictions over continuous feedback dims, ``[K, N, C]``."""
    predictions = ensemble.predict_means(states, actions)
    cont = ensemble.members[0].continuous_idx
    if len(cont) > 0:
        predictions = predictions[:, :, cont]
    return predictions


def mean_deviation(
    ensemble: SimulatorEnsemble, states: np.ndarray, actions: np.ndarray
) -> np.ndarray:
    """The paper's U(s, a) = E_j ‖μ_j(s, a) − μ̄(s, a)‖₂."""
    predictions = _continuous_predictions(ensemble, states, actions)
    consensus = predictions.mean(axis=0, keepdims=True)
    return np.linalg.norm(predictions - consensus, axis=-1).mean(axis=0)


def max_deviation(
    ensemble: SimulatorEnsemble, states: np.ndarray, actions: np.ndarray
) -> np.ndarray:
    """Worst-case member deviation, max_j ‖μ_j − μ̄‖₂ (MOPO-flavoured)."""
    predictions = _continuous_predictions(ensemble, states, actions)
    consensus = predictions.mean(axis=0, keepdims=True)
    return np.linalg.norm(predictions - consensus, axis=-1).max(axis=0)


def pairwise_disagreement(
    ensemble: SimulatorEnsemble, states: np.ndarray, actions: np.ndarray
) -> np.ndarray:
    """Mean pairwise L2 distance between member predictions."""
    predictions = _continuous_predictions(ensemble, states, actions)
    k = predictions.shape[0]
    if k < 2:
        return np.zeros(predictions.shape[1])
    total = np.zeros(predictions.shape[1])
    pairs = 0
    for i in range(k):
        for j in range(i + 1, k):
            total += np.linalg.norm(predictions[i] - predictions[j], axis=-1)
            pairs += 1
    return total / pairs


UNCERTAINTY_ESTIMATORS: Dict[str, UncertaintyFn] = {
    "mean_deviation": mean_deviation,
    "max_deviation": max_deviation,
    "pairwise": pairwise_disagreement,
}


def get_uncertainty_estimator(name: str) -> UncertaintyFn:
    """Look up an estimator by name (raises KeyError with options listed)."""
    if name not in UNCERTAINTY_ESTIMATORS:
        raise KeyError(
            f"unknown uncertainty estimator {name!r}; "
            f"available: {sorted(UNCERTAINTY_ESTIMATORS)}"
        )
    return UNCERTAINTY_ESTIMATORS[name]

"""The simulator set Ω' and ensemble uncertainty U(s, a).

Sec. IV-C: Ω' := {ω : H(D', λ), λ ∈ Λ, D' ⊆ D} — a population of learned
user simulators differing in random seed and training-data subset. The
ensemble provides

- a sampling strategy p(Ω) over members (Alg. 1, line 4),
- the model-uncertainty penalty
  ``U(s, a) = E_j[‖μ_j(s, a) − μ̄(s, a)‖₂]`` measuring prediction
  disagreement at (s, a) (Sec. V-C2),
- train / hold-out splits for the offline experiments (12 train + 3 test
  simulators, Sec. V-C3).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .dataset import TrajectoryDataset
from .learner import SimulatorLearnerConfig, UserSimulator, train_user_simulator


class SimulatorEnsemble:
    """A set of user simulators sharing input/output conventions."""

    def __init__(self, members: Sequence[UserSimulator]):
        if not members:
            raise ValueError("ensemble needs at least one member")
        dims = {(m.state_dim, m.action_dim, m.feedback_dim) for m in members}
        if len(dims) != 1:
            raise ValueError("ensemble members must share dimensions")
        self.members: List[UserSimulator] = list(members)

    def __len__(self) -> int:
        return len(self.members)

    def __getitem__(self, index: int) -> UserSimulator:
        return self.members[index]

    def sample_member(self, rng: np.random.Generator) -> UserSimulator:
        """Uniform p(Ω) sampling strategy over the simulator set."""
        return self.members[int(rng.integers(0, len(self.members)))]

    def predict_means(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """Stacked member predictions, shape ``[K, N, dy]``."""
        return np.stack([m.predict_mean(states, actions) for m in self.members])

    def uncertainty(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """U(s, a) = E_j ‖μ_j(s, a) − μ̄(s, a)‖₂ over continuous feedback dims."""
        predictions = self.predict_means(states, actions)
        cont = self.members[0].continuous_idx
        if len(cont) > 0:
            predictions = predictions[:, :, cont]
        consensus = predictions.mean(axis=0, keepdims=True)
        deviations = np.linalg.norm(predictions - consensus, axis=-1)
        return deviations.mean(axis=0)

    def split(self, holdout: Sequence[int]) -> Tuple["SimulatorEnsemble", "SimulatorEnsemble"]:
        """Partition into (train, holdout) sub-ensembles by member index."""
        holdout_set = set(holdout)
        if not holdout_set or any(i < 0 or i >= len(self.members) for i in holdout_set):
            raise ValueError("holdout indices out of range")
        train = [m for i, m in enumerate(self.members) if i not in holdout_set]
        held = [m for i, m in enumerate(self.members) if i in holdout_set]
        if not train:
            raise ValueError("holdout cannot cover the whole ensemble")
        return SimulatorEnsemble(train), SimulatorEnsemble(held)


def build_simulator_set(
    dataset: TrajectoryDataset,
    num_members: int = 15,
    base_config: Optional[SimulatorLearnerConfig] = None,
    data_fraction: float = 0.8,
    seed: int = 0,
    verbose: bool = False,
) -> SimulatorEnsemble:
    """Construct Ω' by varying seeds and user subsets across members.

    Mirrors the paper's recipe: "15 simulators based on DEMER with
    different random seeds and different data sources of cities".
    Members alternate between training on all groups and on group subsets
    so the ensemble covers both global and per-city idiosyncrasies.
    """
    base_config = base_config or SimulatorLearnerConfig()
    members = []
    group_ids = dataset.group_ids
    for index in range(num_members):
        member_seed = seed + 97 * index
        member_config = replace(base_config, seed=member_seed)
        if index % 3 == 0 or len(group_ids) <= 1:
            subset = dataset.subsample_users(data_fraction, seed=member_seed)
        else:
            # Drop one group to vary the data source across members.
            dropped = group_ids[index % len(group_ids)]
            kept = [gid for gid in group_ids if gid != dropped]
            subset = dataset.select_groups(kept).subsample_users(data_fraction, seed=member_seed)
        if verbose:
            print(f"[ensemble] training member {index + 1}/{num_members}")
        members.append(train_user_simulator(subset, member_config))
    return SimulatorEnsemble(members)

"""Data-driven user-simulator learning — the H(D', λ) black box.

The paper builds its simulator set Ω' by running a user-simulator learning
algorithm H with different hyper-parameters λ (seeds, learning rates) and
data subsets D' ⊆ D (Sec. IV-C). The original uses DEMER; here H is
maximum-likelihood learning of a neural feedback model

    p(y | s, a) = Π_c N(y_c; μ_c(s, a), σ_c(s, a)) · Π_b Bern(y_b; p_b(s, a))

with Gaussian heads for continuous feedback dimensions (orders, online
hours) and Bernoulli heads for binary ones (program completed). Inputs and
continuous targets are standardised with statistics frozen from the
training subset.

Learned this way, ensemble members genuinely disagree off the behaviour
policy's data manifold — which is exactly the property Ω' needs for the
uncertainty penalty and the intervention analysis (Fig. 10) to be
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from .. import nn
from ..utils.seeding import make_rng
from .dataset import TrajectoryDataset


@dataclass
class SimulatorLearnerConfig:
    """Hyper-parameters λ of the simulator learning algorithm H."""

    hidden_sizes: Tuple[int, ...] = (64, 64)
    learning_rate: float = 1e-3
    epochs: int = 60
    batch_size: int = 256
    weight_decay: float = 1e-5
    binary_dims: Tuple[int, ...] = (2,)  # indices of Bernoulli feedback dims
    seed: Optional[int] = None


class UserSimulator(nn.Module):
    """A learned feedback model M_ω: (s, a) → distribution over y."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        feedback_dim: int,
        config: SimulatorLearnerConfig,
    ):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.feedback_dim = feedback_dim
        self.config = config
        self.binary_idx = np.array(sorted(config.binary_dims), dtype=np.int64)
        self.continuous_idx = np.array(
            [i for i in range(feedback_dim) if i not in set(config.binary_dims)],
            dtype=np.int64,
        )
        rng = make_rng(config.seed)
        in_dim = state_dim + action_dim
        n_cont, n_bin = len(self.continuous_idx), len(self.binary_idx)
        out_dim = 2 * n_cont + n_bin  # mean + log_std per continuous, logit per binary
        self.net = nn.MLP([in_dim, *config.hidden_sizes, out_dim], rng, activation="tanh")
        # Input / output standardisation (frozen after fit_normalizer).
        self.input_mean = np.zeros(in_dim)
        self.input_std = np.ones(in_dim)
        self.target_mean = np.zeros(max(n_cont, 1))
        self.target_std = np.ones(max(n_cont, 1))

    # ------------------------------------------------------------------
    def fit_normalizer(self, states: np.ndarray, actions: np.ndarray, feedback: np.ndarray) -> None:
        inputs = np.concatenate([states, actions], axis=1)
        self.input_mean = inputs.mean(axis=0)
        self.input_std = inputs.std(axis=0) + 1e-6
        if len(self.continuous_idx) > 0:
            targets = feedback[:, self.continuous_idx]
            self.target_mean = targets.mean(axis=0)
            self.target_std = targets.std(axis=0) + 1e-6

    def normalizer_state(self) -> dict:
        """Standardisation stats to persist alongside ``save_module``."""
        return {
            "input_mean": self.input_mean.copy(),
            "input_std": self.input_std.copy(),
            "target_mean": self.target_mean.copy(),
            "target_std": self.target_std.copy(),
        }

    def load_normalizer_state(self, state: dict) -> None:
        for key, value in self.normalizer_state().items():
            incoming = np.asarray(state[key], dtype=np.float64)
            if incoming.shape != value.shape:
                raise ValueError(f"normalizer shape mismatch for {key}")
            setattr(self, key, incoming.copy())

    def _forward(self, states: np.ndarray, actions: np.ndarray) -> Tuple[nn.Tensor, nn.Tensor, nn.Tensor]:
        inputs = (np.concatenate([states, actions], axis=1) - self.input_mean) / self.input_std
        out = self.net(nn.Tensor(inputs))
        n_cont = len(self.continuous_idx)
        mean = out[:, :n_cont]
        log_std = out[:, n_cont : 2 * n_cont].clip(-5.0, 2.0)
        logits = out[:, 2 * n_cont :]
        return mean, log_std, logits

    # ------------------------------------------------------------------
    def log_likelihood(self, states: np.ndarray, actions: np.ndarray, feedback: np.ndarray) -> nn.Tensor:
        """Mean log p(y | s, a) over the batch (differentiable)."""
        mean, log_std, logits = self._forward(states, actions)
        total = None
        if len(self.continuous_idx) > 0:
            targets = (feedback[:, self.continuous_idx] - self.target_mean) / self.target_std
            gaussian = nn.DiagGaussian(mean, log_std)
            total = gaussian.log_prob(targets)
        if len(self.binary_idx) > 0:
            binary = nn.Bernoulli(logits)
            bin_ll = binary.log_prob(feedback[:, self.binary_idx]).sum(axis=-1)
            total = bin_ll if total is None else total + bin_ll
        return total.mean()

    def predict_mean(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """E[y | s, a] in raw feedback scale (binary dims → probabilities)."""
        with nn.no_grad():
            mean, _, logits = self._forward(states, actions)
        out = np.zeros((states.shape[0], self.feedback_dim))
        if len(self.continuous_idx) > 0:
            out[:, self.continuous_idx] = mean.data * self.target_std + self.target_mean
        if len(self.binary_idx) > 0:
            out[:, self.binary_idx] = 1.0 / (1.0 + np.exp(-logits.data))
        return out

    def sample_from_outputs(
        self,
        mean: np.ndarray,
        log_std: np.ndarray,
        logits: np.ndarray,
        normal_noise: Optional[np.ndarray] = None,
        uniform_draws: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Turn raw network outputs plus noise into a feedback sample.

        Shared by :meth:`sample` and the batched env stepper (which draws
        the noise per city from per-city streams); keeping the
        de-normalisation here guarantees both paths stay numerically
        identical.
        """
        out = np.zeros((mean.shape[0], self.feedback_dim))
        if len(self.continuous_idx) > 0:
            standardised = mean + np.exp(log_std) * normal_noise
            out[:, self.continuous_idx] = standardised * self.target_std + self.target_mean
        if len(self.binary_idx) > 0:
            probs = 1.0 / (1.0 + np.exp(-logits))
            out[:, self.binary_idx] = (uniform_draws < probs).astype(np.float64)
        return out

    def sample(self, states: np.ndarray, actions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw ŷ ~ p(y | s, a)."""
        with nn.no_grad():
            mean, log_std, logits = self._forward(states, actions)
        noise = rng.standard_normal(mean.shape) if len(self.continuous_idx) > 0 else None
        draws = rng.random(logits.shape) if len(self.binary_idx) > 0 else None
        return self.sample_from_outputs(mean.data, log_std.data, logits.data, noise, draws)


DataLike = Union[TrajectoryDataset, Tuple[np.ndarray, np.ndarray, np.ndarray]]


def _as_pairs(data: DataLike) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    if isinstance(data, TrajectoryDataset):
        return data.transition_pairs()
    states, actions, feedback = data
    return np.asarray(states), np.asarray(actions), np.asarray(feedback)


def train_user_simulator(
    data: DataLike,
    config: Optional[SimulatorLearnerConfig] = None,
    verbose: bool = False,
) -> UserSimulator:
    """Run H(D', λ): fit a :class:`UserSimulator` by maximum likelihood."""
    config = config or SimulatorLearnerConfig()
    states, actions, feedback = _as_pairs(data)
    simulator = UserSimulator(states.shape[1], actions.shape[1], feedback.shape[1], config)
    simulator.fit_normalizer(states, actions, feedback)
    rng = make_rng(None if config.seed is None else config.seed + 1)
    optimizer = nn.Adam(
        simulator.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
    )
    n = states.shape[0]
    batch = min(config.batch_size, n)
    for epoch in range(config.epochs):
        order = rng.permutation(n)
        epoch_ll = 0.0
        batches = 0
        for start in range(0, n, batch):
            idx = order[start : start + batch]
            optimizer.zero_grad()
            ll = simulator.log_likelihood(states[idx], actions[idx], feedback[idx])
            loss = -ll
            loss.backward()
            nn.clip_grad_norm(simulator.parameters(), 10.0)
            optimizer.step()
            epoch_ll += ll.item()
            batches += 1
        if verbose and epoch % 10 == 0:
            print(f"[simulator] epoch {epoch} mean log-likelihood {epoch_ll / batches:.4f}")
    return simulator


def heldout_log_likelihood(simulator: UserSimulator, data: DataLike) -> float:
    """Mean log-likelihood of ``data`` under the simulator (no gradients)."""
    states, actions, feedback = _as_pairs(data)
    with nn.no_grad():
        return simulator.log_likelihood(states, actions, feedback).item()

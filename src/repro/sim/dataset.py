"""Logged trajectory datasets.

The logged dataset D (Sec. III-B) stores, per group g, the real interaction
trajectories τʳ collected under a behaviour policy πₑ. It is consumed by

- the user-simulator learner H(D', λ) — as flat (s, a) → y pairs,
- SADAE — as per-(group, timestep) state-action sets X_t^g,
- the simulated transition process P_{M,τʳ} — as a source of exogenous
  state features,
- the F_exec filter — per-user historical action bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.seeding import make_rng


@dataclass
class GroupTrajectories:
    """All logged episodes of one group.

    Shapes: ``states [E, T+1, N, ds]``, ``actions [E, T, N, da]``,
    ``feedback [E, T, N, dy]``, ``rewards [E, T, N]`` for E episodes of T
    steps over N users.
    """

    group_id: int
    states: np.ndarray
    actions: np.ndarray
    feedback: np.ndarray
    rewards: np.ndarray

    def __post_init__(self):
        e, t1, n, _ = self.states.shape
        if self.actions.shape[:3] != (e, t1 - 1, n):
            raise ValueError("actions shape inconsistent with states")
        if self.feedback.shape[:3] != (e, t1 - 1, n):
            raise ValueError("feedback shape inconsistent with states")
        if self.rewards.shape != (e, t1 - 1, n):
            raise ValueError("rewards shape inconsistent with states")

    @property
    def num_episodes(self) -> int:
        return self.states.shape[0]

    @property
    def horizon(self) -> int:
        return self.actions.shape[1]

    @property
    def num_users(self) -> int:
        return self.states.shape[2]

    @property
    def state_dim(self) -> int:
        return self.states.shape[3]

    @property
    def action_dim(self) -> int:
        return self.actions.shape[3]

    @property
    def feedback_dim(self) -> int:
        return self.feedback.shape[3]

    def select_users(self, indices: np.ndarray) -> "GroupTrajectories":
        """A view restricted to a subset of users."""
        return GroupTrajectories(
            group_id=self.group_id,
            states=self.states[:, :, indices],
            actions=self.actions[:, :, indices],
            feedback=self.feedback[:, :, indices],
            rewards=self.rewards[:, :, indices],
        )

    def state_action_set(self, episode: int, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """X_t^g = (S_t, A_{t-1}): states at t paired with previous actions.

        For t = 0 the previous action is defined as zero (no recommendation
        has been made yet), matching the rollout convention.
        """
        states_t = self.states[episode, t]
        if t == 0:
            prev_actions = np.zeros((self.num_users, self.action_dim))
        else:
            prev_actions = self.actions[episode, t - 1]
        return states_t, prev_actions

    def transition_pairs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten to supervised (s, a, y) arrays for simulator learning."""
        e, t, n = self.rewards.shape
        s = self.states[:, :-1].reshape(e * t * n, self.state_dim)
        a = self.actions.reshape(e * t * n, self.action_dim)
        y = self.feedback.reshape(e * t * n, self.feedback_dim)
        return s, a, y


class TrajectoryDataset:
    """A collection of :class:`GroupTrajectories`, one per group."""

    def __init__(self, groups: Sequence[GroupTrajectories]):
        if not groups:
            raise ValueError("dataset needs at least one group")
        dims = {(g.state_dim, g.action_dim, g.feedback_dim) for g in groups}
        if len(dims) != 1:
            raise ValueError("all groups must share state/action/feedback dims")
        self.groups: List[GroupTrajectories] = list(groups)
        self.state_dim, self.action_dim, self.feedback_dim = dims.pop()

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[GroupTrajectories]:
        return iter(self.groups)

    def group(self, group_id: int) -> GroupTrajectories:
        for g in self.groups:
            if g.group_id == group_id:
                return g
        raise KeyError(f"no group with id {group_id}")

    @property
    def group_ids(self) -> List[int]:
        return [g.group_id for g in self.groups]

    @property
    def num_transitions(self) -> int:
        return sum(g.rewards.size for g in self.groups)

    # ------------------------------------------------------------------
    # supervised views
    # ------------------------------------------------------------------
    def transition_pairs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (s, a, y) pairs concatenated across groups."""
        parts = [g.transition_pairs() for g in self.groups]
        s = np.concatenate([p[0] for p in parts], axis=0)
        a = np.concatenate([p[1] for p in parts], axis=0)
        y = np.concatenate([p[2] for p in parts], axis=0)
        return s, a, y

    def state_action_sets(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Every X_t^g across groups, episodes and timesteps (for SADAE)."""
        sets = []
        for g in self.groups:
            for episode in range(g.num_episodes):
                for t in range(g.horizon + 1):
                    sets.append(g.state_action_set(episode, t))
        return sets

    # ------------------------------------------------------------------
    # splits and subsets
    # ------------------------------------------------------------------
    def split_users(
        self, train_fraction: float, seed: Optional[int] = None
    ) -> Tuple["TrajectoryDataset", "TrajectoryDataset"]:
        """Split each group's users into train/test partitions."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = make_rng(seed)
        train_groups, test_groups = [], []
        for g in self.groups:
            permutation = rng.permutation(g.num_users)
            cut = max(1, int(round(train_fraction * g.num_users)))
            cut = min(cut, g.num_users - 1)
            train_groups.append(g.select_users(np.sort(permutation[:cut])))
            test_groups.append(g.select_users(np.sort(permutation[cut:])))
        return TrajectoryDataset(train_groups), TrajectoryDataset(test_groups)

    def subsample_users(self, fraction: float, seed: Optional[int] = None) -> "TrajectoryDataset":
        """A random user subset D' ⊆ D (for ensemble diversity in Ω')."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = make_rng(seed)
        subsets = []
        for g in self.groups:
            count = max(1, int(round(fraction * g.num_users)))
            indices = np.sort(rng.choice(g.num_users, size=count, replace=False))
            subsets.append(g.select_users(indices))
        return TrajectoryDataset(subsets)

    def select_groups(self, group_ids: Sequence[int]) -> "TrajectoryDataset":
        return TrajectoryDataset([self.group(gid) for gid in group_ids])

    # ------------------------------------------------------------------
    # F_exec support
    # ------------------------------------------------------------------
    def action_bounds(self) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Per-group arrays of each user's historical (min, max) action values.

        Returns ``{group_id: (min [N, da], max [N, da])}`` — the executable
        action subspace boundaries used by F_exec.
        """
        bounds = {}
        for g in self.groups:
            flat = g.actions.reshape(-1, g.num_users, g.action_dim)
            bounds[g.group_id] = (flat.min(axis=0), flat.max(axis=0))
        return bounds

"""The simulated transition process P_{M,τʳ} (Sec. III-B).

A :class:`SimulatedDPREnv` turns a learned user simulator M_ω plus logged
real trajectories τʳ into a trainable environment:

1. the simulator predicts only the user feedback ŷ_{t+1} for (s_t, a_t);
2. the history block s^hist and statistics s^stat of the next state are
   updated from ŷ;
3. the exogenous blocks — s^user, s^group, s^time — are loaded from the
   real trajectory, exactly as the paper prescribes ("instead of directly
   predicting the whole next state, the simulator just predicts y and
   constructs the other states from historical data τʳ").

Following the compounding-error countermeasures of Sec. IV-C, ``reset``
draws a random initial state from the logged dataset and rollouts are
truncated at T_c steps.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..envs.base import MultiUserEnv
from ..envs.dpr import COST_RATE, DPRFeaturizer, FEEDBACK_DIM, HISTORY_DAYS
from ..envs.spaces import Box
from ..utils.seeding import make_rng
from .dataset import GroupTrajectories
from .ensemble import SimulatorEnsemble
from .learner import UserSimulator


class SimulatedDPREnv(MultiUserEnv):
    """Rollout environment backed by a learned simulator and logged data."""

    def __init__(
        self,
        simulator: UserSimulator,
        group_log: GroupTrajectories,
        truncate_horizon: int = 5,
        alpha1: float = 1.0,
        ensemble: Optional[SimulatorEnsemble] = None,
        seed: Optional[int] = None,
    ):
        if simulator.state_dim != group_log.state_dim:
            raise ValueError("simulator/state dims disagree with the logged data")
        self.simulator = simulator
        self.group_log = group_log
        self.featurizer = DPRFeaturizer()
        self.truncate_horizon = truncate_horizon
        self.alpha1 = alpha1
        self.ensemble = ensemble
        self.num_users = group_log.num_users
        self.horizon = truncate_horizon
        self.group_id = group_log.group_id
        self.observation_space = Box(
            low=np.full(self.featurizer.state_dim, -np.inf),
            high=np.full(self.featurizer.state_dim, np.inf),
        )
        self.action_space = Box(low=np.zeros(2), high=np.ones(2))
        self._rng = make_rng(seed)
        # F_exec support: each user's historical action extremes in this group.
        flat_actions = group_log.actions.reshape(-1, self.num_users, group_log.action_dim)
        self.exec_low = flat_actions.min(axis=0)
        self.exec_high = flat_actions.max(axis=0)
        self._steps = 0
        self._time_index = 0
        self._states: np.ndarray = np.zeros((self.num_users, self.featurizer.state_dim))
        self._order_history: np.ndarray = np.zeros((self.num_users, HISTORY_DAYS))
        self._user_static: np.ndarray = np.zeros((self.num_users, DPRFeaturizer.USER_DIM))
        self._group_static: np.ndarray = np.zeros(DPRFeaturizer.GROUP_DIM)
        self._last_feedback: np.ndarray = np.zeros((self.num_users, FEEDBACK_DIM))

    # ------------------------------------------------------------------
    def _history_from_state(self, states: np.ndarray) -> np.ndarray:
        """Reconstruct a 14-day order history consistent with s^stat.

        The logged state stores only 7- and 14-day means; we rebuild a
        piecewise-constant history with the same statistics so that rolling
        it forward with predicted orders reproduces the real update rule.
        """
        stat = states[:, self.featurizer.slices["stat"]]
        stat7, stat14 = stat[:, 0], stat[:, 1]
        early = np.maximum(0.0, 2.0 * stat14 - stat7)  # mean of days 8..14 back
        history = np.empty((states.shape[0], HISTORY_DAYS))
        history[:, : HISTORY_DAYS - 7] = early[:, None]
        history[:, HISTORY_DAYS - 7 :] = stat7[:, None]
        return history

    def reset(self) -> np.ndarray:
        log = self.group_log
        episode = int(self._rng.integers(0, log.num_episodes))
        max_start = max(log.horizon - self.truncate_horizon, 0)
        start = int(self._rng.integers(0, max_start + 1))
        states = log.states[episode, start].copy()
        self._states = states
        self._user_static = states[:, self.featurizer.slices["user"]]
        self._group_static = states[0, self.featurizer.slices["group"]]
        self._last_feedback = states[:, self.featurizer.slices["hist"]]
        self._order_history = self._history_from_state(states)
        self._time_index = start
        self._steps = 0
        return states.copy()

    def step(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        actions = self._validate_actions(actions)
        actions = np.clip(actions, 0.0, 1.0)
        bonus = actions[:, 1]

        feedback = self.simulator.sample(self._states, actions, self._rng)
        feedback[:, 0] = np.maximum(feedback[:, 0], 0.0)  # orders
        feedback[:, 1] = np.maximum(feedback[:, 1], 0.0)  # hours
        orders = feedback[:, 0]
        cost = COST_RATE * bonus * orders
        rewards = orders - self.alpha1 * cost

        self._order_history = np.roll(self._order_history, -1, axis=1)
        self._order_history[:, -1] = orders
        self._last_feedback = feedback
        self._time_index += 1
        self._steps += 1

        self._states = self.featurizer.build_states(
            self._user_static,
            self._group_static,
            self._time_index,
            self._order_history,
            self._last_feedback,
        )
        dones = np.full(self.num_users, self._steps >= self.truncate_horizon)
        info: Dict[str, Any] = {
            "orders": orders,
            "cost": cost,
            "completed": feedback[:, 2],
            "t": self._steps,
        }
        if self.ensemble is not None:
            info["uncertainty"] = self.ensemble.uncertainty(self._states, actions)
        return self._states.copy(), rewards, dones, info

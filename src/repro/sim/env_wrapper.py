"""The simulated transition process P_{M,τʳ} (Sec. III-B).

A :class:`SimulatedDPREnv` turns a learned user simulator M_ω plus logged
real trajectories τʳ into a trainable environment:

1. the simulator predicts only the user feedback ŷ_{t+1} for (s_t, a_t);
2. the history block s^hist and statistics s^stat of the next state are
   updated from ŷ;
3. the exogenous blocks — s^user, s^group, s^time — are loaded from the
   real trajectory, exactly as the paper prescribes ("instead of directly
   predicting the whole next state, the simulator just predicts y and
   constructs the other states from historical data τʳ").

Following the compounding-error countermeasures of Sec. IV-C, ``reset``
draws a random initial state from the logged dataset and rollouts are
truncated at T_c steps.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..envs.base import MultiUserEnv
from ..envs.dpr import COST_RATE, DPRFeaturizer, FEEDBACK_DIM, HISTORY_DAYS
from ..envs.spaces import Box
from ..rl.vec import VecEnvPool
from ..utils.seeding import make_rng
from .dataset import GroupTrajectories
from .ensemble import SimulatorEnsemble
from .learner import UserSimulator


class SimulatedDPREnv(MultiUserEnv):
    """Rollout environment backed by a learned simulator and logged data."""

    def __init__(
        self,
        simulator: UserSimulator,
        group_log: GroupTrajectories,
        truncate_horizon: int = 5,
        alpha1: float = 1.0,
        ensemble: Optional[SimulatorEnsemble] = None,
        seed: Optional[int] = None,
    ):
        if simulator.state_dim != group_log.state_dim:
            raise ValueError("simulator/state dims disagree with the logged data")
        self.simulator = simulator
        self.group_log = group_log
        self.featurizer = DPRFeaturizer()
        self.truncate_horizon = truncate_horizon
        self.alpha1 = alpha1
        self.ensemble = ensemble
        self.num_users = group_log.num_users
        self.horizon = truncate_horizon
        self.group_id = group_log.group_id
        self.observation_space = Box(
            low=np.full(self.featurizer.state_dim, -np.inf),
            high=np.full(self.featurizer.state_dim, np.inf),
        )
        self.action_space = Box(low=np.zeros(2), high=np.ones(2))
        self._rng = make_rng(seed)
        # F_exec support: each user's historical action extremes in this group.
        flat_actions = group_log.actions.reshape(-1, self.num_users, group_log.action_dim)
        self.exec_low = flat_actions.min(axis=0)
        self.exec_high = flat_actions.max(axis=0)
        self._steps = 0
        self._time_index = 0
        self._states: np.ndarray = np.zeros((self.num_users, self.featurizer.state_dim))
        self._order_history: np.ndarray = np.zeros((self.num_users, HISTORY_DAYS))
        self._user_static: np.ndarray = np.zeros((self.num_users, DPRFeaturizer.USER_DIM))
        self._group_static: np.ndarray = np.zeros(DPRFeaturizer.GROUP_DIM)
        self._last_feedback: np.ndarray = np.zeros((self.num_users, FEEDBACK_DIM))

    # ------------------------------------------------------------------
    def _history_from_state(self, states: np.ndarray) -> np.ndarray:
        """Reconstruct a 14-day order history consistent with s^stat.

        The logged state stores only 7- and 14-day means; we rebuild a
        piecewise-constant history with the same statistics so that rolling
        it forward with predicted orders reproduces the real update rule.
        """
        stat = states[:, self.featurizer.slices["stat"]]
        stat7, stat14 = stat[:, 0], stat[:, 1]
        early = np.maximum(0.0, 2.0 * stat14 - stat7)  # mean of days 8..14 back
        history = np.empty((states.shape[0], HISTORY_DAYS))
        history[:, : HISTORY_DAYS - 7] = early[:, None]
        history[:, HISTORY_DAYS - 7 :] = stat7[:, None]
        return history

    def reset(self) -> np.ndarray:
        log = self.group_log
        episode = int(self._rng.integers(0, log.num_episodes))
        max_start = max(log.horizon - self.truncate_horizon, 0)
        start = int(self._rng.integers(0, max_start + 1))
        states = log.states[episode, start].copy()
        self._states = states
        # Copies, not views: ``step`` rebuilds the state in place into the
        # ``self._states`` buffer, so the exogenous blocks must not alias it.
        self._user_static = states[:, self.featurizer.slices["user"]].copy()
        self._group_static = states[0, self.featurizer.slices["group"]].copy()
        self._last_feedback = states[:, self.featurizer.slices["hist"]].copy()
        self._order_history = self._history_from_state(states)
        self._time_index = start
        self._steps = 0
        return states.copy()

    def step(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        actions = self._validate_actions(actions)
        actions = np.clip(actions, 0.0, 1.0)
        bonus = actions[:, 1]

        feedback = self.simulator.sample(self._states, actions, self._rng)
        feedback[:, 0] = np.maximum(feedback[:, 0], 0.0)  # orders
        feedback[:, 1] = np.maximum(feedback[:, 1], 0.0)  # hours
        orders = feedback[:, 0]
        cost = COST_RATE * bonus * orders
        rewards = orders - self.alpha1 * cost

        self._order_history = np.roll(self._order_history, -1, axis=1)
        self._order_history[:, -1] = orders
        self._last_feedback = feedback
        self._time_index += 1
        self._steps += 1

        self._states = self.featurizer.build_states(
            self._user_static,
            self._group_static,
            self._time_index,
            self._order_history,
            self._last_feedback,
            out=self._states,
        )
        dones = np.full(self.num_users, self._steps >= self.truncate_horizon)
        info: Dict[str, Any] = {
            "orders": orders,
            "cost": cost,
            "completed": feedback[:, 2],
            "t": self._steps,
        }
        if self.ensemble is not None:
            info["uncertainty"] = self.ensemble.uncertainty(self._states, actions)
        return self._states.copy(), rewards, dones, info

    @classmethod
    def make_batch_stepper(cls, envs: Sequence["SimulatedDPREnv"], slices: Sequence[slice]):
        """Block-diagonal stepper for pools sharing one simulator M_ω.

        Batching across cities requires every member to query the *same*
        simulator (and the same uncertainty ensemble), so the network
        forward runs once per timestep for the whole stacked batch.
        Returns None otherwise; the pool falls back to per-env stepping.
        """
        if len(envs) < 2:
            return None
        if any(type(env) is not SimulatedDPREnv for env in envs):
            return None
        first = envs[0]
        if any(env.simulator is not first.simulator for env in envs):
            return None
        if any(env.ensemble is not first.ensemble for env in envs):
            return None
        if len({env.truncate_horizon for env in envs}) != 1:
            return None
        return _SimulatedDPRBatchStepper(list(envs), list(slices))


class _SimulatedDPRBatchStepper:
    """Vectorized reset/step over a stacked batch of :class:`SimulatedDPREnv`.

    The learned-simulator forward (and the ensemble uncertainty pass)
    runs once over all cities; feedback noise is drawn per city from that
    city's own generator, and episode starts are drawn per city exactly
    as in ``SimulatedDPREnv.reset`` — the results are numerically
    identical to stepping the member envs one by one.
    """

    def __init__(self, envs: Sequence["SimulatedDPREnv"], slices: Sequence[slice]):
        self.envs = list(envs)
        self.slices = list(slices)
        self.total = self.slices[-1].stop
        first = self.envs[0]
        self.simulator = first.simulator
        self.ensemble = first.ensemble
        self.featurizer = first.featurizer
        self.truncate_horizon = first.truncate_horizon
        self.alpha1 = np.empty(self.total)
        for env, block in zip(self.envs, self.slices):
            self.alpha1[block] = env.alpha1
        ds = self.featurizer.state_dim
        self._states = np.zeros((self.total, ds))
        self._user_static = np.zeros((self.total, DPRFeaturizer.USER_DIM))
        self._group_static = np.zeros((self.total, DPRFeaturizer.GROUP_DIM))
        self._last_feedback = np.zeros((self.total, FEEDBACK_DIM))
        self._order_history = np.zeros((self.total, HISTORY_DAYS))
        self._time_index = np.zeros(len(self.envs), dtype=np.int64)
        self._steps = 0

    def reset(self) -> np.ndarray:
        featurizer = self.featurizer
        for index, (env, block) in enumerate(zip(self.envs, self.slices)):
            log = env.group_log
            episode = int(env._rng.integers(0, log.num_episodes))
            max_start = max(log.horizon - env.truncate_horizon, 0)
            start = int(env._rng.integers(0, max_start + 1))
            states = log.states[episode, start]
            self._states[block] = states
            self._group_static[block] = states[0, featurizer.slices["group"]]
            self._time_index[index] = start
        self._user_static[:] = self._states[:, featurizer.slices["user"]]
        self._last_feedback[:] = self._states[:, featurizer.slices["hist"]]
        # _history_from_state is already row-vectorized; reuse it on the
        # stacked batch so the reconstruction rule lives in one place.
        self._order_history[:] = self.envs[0]._history_from_state(self._states)
        self._steps = 0
        return self._states.copy()

    def _sample_feedback(self, actions: np.ndarray) -> np.ndarray:
        """One simulator forward for all cities; per-city noise streams."""
        simulator = self.simulator
        with nn.no_grad():
            mean, log_std, logits = simulator._forward(self._states, actions)
        n_cont = len(simulator.continuous_idx)
        n_bin = len(simulator.binary_idx)
        noise = np.empty((self.total, n_cont)) if n_cont > 0 else None
        draws = np.empty((self.total, n_bin)) if n_bin > 0 else None
        for env, block in zip(self.envs, self.slices):
            # Per stream: continuous noise first, then binary draws —
            # the order UserSimulator.sample consumes them in.
            count = block.stop - block.start
            if noise is not None:
                noise[block] = env._rng.standard_normal((count, n_cont))
            if draws is not None:
                draws[block] = env._rng.random((count, n_bin))
        return simulator.sample_from_outputs(
            mean.data, log_std.data, logits.data, noise, draws
        )

    def step(self, actions: np.ndarray):
        actions = np.clip(np.asarray(actions, dtype=np.float64), 0.0, 1.0)
        bonus = actions[:, 1]

        feedback = self._sample_feedback(actions)
        feedback[:, 0] = np.maximum(feedback[:, 0], 0.0)
        feedback[:, 1] = np.maximum(feedback[:, 1], 0.0)
        orders = feedback[:, 0]
        cost = COST_RATE * bonus * orders
        rewards = orders - self.alpha1 * cost

        self._order_history = np.roll(self._order_history, -1, axis=1)
        self._order_history[:, -1] = orders
        self._last_feedback = feedback
        self._time_index += 1
        self._steps += 1

        per_env_states = []
        for index, block in enumerate(self.slices):
            per_env_states.append(
                self.featurizer.build_states(
                    self._user_static[block],
                    self._group_static[block],
                    int(self._time_index[index]),
                    self._order_history[block],
                    self._last_feedback[block],
                    out=self._states[block],
                )
            )
        dones = np.full(self.total, self._steps >= self.truncate_horizon)
        uncertainty = None
        if self.ensemble is not None:
            uncertainty = self.ensemble.uncertainty(self._states, actions)
        infos = []
        for block in self.slices:
            info = {
                "orders": orders[block].copy(),
                "cost": cost[block].copy(),
                "completed": feedback[block, 2].copy(),
                "t": self._steps,
            }
            if uncertainty is not None:
                info["uncertainty"] = np.asarray(uncertainty)[block].copy()
            infos.append(info)
        return self._states.copy(), rewards, dones, infos


def make_simulated_pool(
    simulator: UserSimulator,
    group_logs: Sequence[GroupTrajectories],
    truncate_horizon: int = 5,
    alpha1: float = 1.0,
    ensemble: Optional[SimulatorEnsemble] = None,
    seed: Optional[int] = None,
) -> VecEnvPool:
    """All cities of a logged dataset under one sampled simulator M_ω.

    The canonical batched cross-city rollout setup: one
    :class:`SimulatedDPREnv` per group, stacked on the user axis so
    :func:`repro.rl.vec.collect_segments_vec` drives every city with a
    single ``act`` call per timestep.
    """
    envs = [
        SimulatedDPREnv(
            simulator,
            log,
            truncate_horizon=truncate_horizon,
            alpha1=alpha1,
            ensemble=ensemble,
            seed=None if seed is None else seed + index,
        )
        for index, log in enumerate(group_logs)
    ]
    return VecEnvPool(envs)

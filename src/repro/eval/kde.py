"""Gaussian kernel density estimation (Rosenblatt [49], Scott's rule).

Used by the Eq. (9) dataset-KLD metric: the PDFs of real and reconstructed
state-action data are estimated with KDE before computing the divergence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class GaussianKDE:
    """Multivariate Gaussian KDE with a diagonal-free full bandwidth.

    Bandwidth follows Scott's rule ``n^(-1/(d+4))`` scaled by the sample
    covariance, matching ``scipy.stats.gaussian_kde``'s default.
    """

    def __init__(self, data: np.ndarray, bandwidth_factor: Optional[float] = None):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim == 1:
            data = data[:, None]
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("KDE needs a [N, D] array with N >= 2")
        self.data = data
        self.n, self.d = data.shape
        self.factor = bandwidth_factor or self.n ** (-1.0 / (self.d + 4))
        covariance = np.atleast_2d(np.cov(data, rowvar=False))
        # Regularise so degenerate dimensions keep the estimate finite.
        covariance += np.eye(self.d) * 1e-9 * max(np.trace(covariance), 1.0)
        self.covariance = covariance * self.factor**2
        self._precision = np.linalg.inv(self.covariance)
        sign, logdet = np.linalg.slogdet(self.covariance)
        if sign <= 0:
            raise ValueError("bandwidth covariance is not positive definite")
        self._log_norm = -0.5 * (self.d * np.log(2.0 * np.pi) + logdet) - np.log(self.n)

    def logpdf(self, points: np.ndarray) -> np.ndarray:
        """Log-density at each query point, shape ``[M]``."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[:, None]
        diffs = points[:, None, :] - self.data[None, :, :]  # [M, N, D]
        quad = np.einsum("mnd,de,mne->mn", diffs, self._precision, diffs)
        # log-sum-exp over kernels
        peak = quad.min(axis=1, keepdims=True)
        summed = np.exp(-0.5 * (quad - peak)).sum(axis=1)
        return self._log_norm - 0.5 * peak[:, 0] + np.log(summed)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        return np.exp(self.logpdf(points))

"""Policy evaluation metrics for the offline tests and the A/B test.

- :func:`expected_cumulative_reward` — the Table IV metric (expected
  cumulative rewards among drivers in a deployment simulator);
- :func:`order_cost_increment` — the Table III metric (% increment of
  orders and costs relative to the behaviour policy πₑ);
- :func:`run_ab_test` — the Fig. 11 protocol: control and treatment driver
  groups, a deployment day, daily scaled rewards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..envs.base import MultiUserEnv
from ..rl.evaluate import evaluate


def expected_cumulative_reward(
    env: MultiUserEnv,
    act_fn,
    episodes: int = 1,
    gamma: float = 1.0,
) -> float:
    """Mean per-user cumulative reward of a policy in an environment."""
    return evaluate(act_fn, env, episodes=episodes, gamma=gamma)


def rollout_totals(env: MultiUserEnv, act_fn, episodes: int = 1) -> Dict[str, float]:
    """Total orders / cost / reward per user-episode for a policy.

    Requires the env's info dict to expose ``orders`` and ``cost`` (both
    the ground-truth DPR env and the simulated wrapper do).
    """
    orders_total, cost_total, reward_total = 0.0, 0.0, 0.0
    for _ in range(episodes):
        if hasattr(act_fn, "reset"):
            act_fn.reset(env.num_users)
        states = env.reset()
        for t in range(env.horizon):
            actions = act_fn(states, t)
            states, rewards, dones, info = env.step(actions)
            orders_total += float(info["orders"].mean())
            cost_total += float(info["cost"].mean())
            reward_total += float(rewards.mean())
            if np.all(dones):
                break
    return {
        "orders": orders_total / episodes,
        "cost": cost_total / episodes,
        "reward": reward_total / episodes,
    }


def order_cost_increment(
    env_factory: Callable[[], MultiUserEnv],
    policy_act_fn,
    behavior_act_fn,
    episodes: int = 1,
) -> Dict[str, float]:
    """Percentage increments of orders and cost vs. the behaviour policy.

    ``env_factory`` must build identically-seeded environments so both
    policies face the same users and randomness (paired comparison).
    """
    policy_stats = rollout_totals(env_factory(), policy_act_fn, episodes)
    behavior_stats = rollout_totals(env_factory(), behavior_act_fn, episodes)

    def pct(new: float, old: float) -> float:
        if abs(old) < 1e-12:
            return 0.0
        return 100.0 * (new - old) / abs(old)

    return {
        "orders_pct": pct(policy_stats["orders"], behavior_stats["orders"]),
        "cost_pct": pct(policy_stats["cost"], behavior_stats["cost"]),
        "reward_pct": pct(policy_stats["reward"], behavior_stats["reward"]),
        "policy": policy_stats,
        "behavior": behavior_stats,
    }


@dataclass
class ABTestResult:
    """Daily series of an A/B comparison (Fig. 11)."""

    days: np.ndarray               # calendar day indices
    control_rewards: np.ndarray    # daily mean reward, control group
    treatment_rewards: np.ndarray  # daily mean reward, treatment group
    deploy_day: int

    def scaled(self) -> Dict[str, np.ndarray]:
        """Series scaled by the pre-deployment control mean (the y-axis of
        Fig. 11 is 'scaled rewards')."""
        pre = self.control_rewards[self.days < self.deploy_day]
        scale = float(pre.mean()) if len(pre) else 1.0
        return {
            "control": self.control_rewards / scale,
            "treatment": self.treatment_rewards / scale,
        }

    def post_deploy_improvement(self) -> float:
        """% improvement of treatment over control after deployment."""
        post = self.days >= self.deploy_day
        control = float(self.control_rewards[post].mean())
        treatment = float(self.treatment_rewards[post].mean())
        if abs(control) < 1e-12:
            return 0.0
        return 100.0 * (treatment - control) / abs(control)


def run_ab_test(
    env_factory: Callable[[int], MultiUserEnv],
    human_act_fn_factory: Callable[[], object],
    treatment_act_fn,
    start_day: int = 18,
    deploy_day: int = 22,
    end_day: int = 28,
    seed: int = 0,
) -> ABTestResult:
    """Simulate the production A/B protocol of Sec. V-D.

    Two identically-initialised driver groups run under the human policy;
    from ``deploy_day`` the treatment group switches to the candidate
    policy. ``env_factory(seed)`` must return a fresh environment whose
    horizon covers ``end_day - start_day + 1`` days.
    """
    days = np.arange(start_day, end_day + 1)
    control_env = env_factory(seed)
    treatment_env = env_factory(seed)
    control_fn = human_act_fn_factory()
    treatment_human_fn = human_act_fn_factory()
    control_states = control_env.reset()
    treatment_states = treatment_env.reset()
    if hasattr(control_fn, "reset"):
        control_fn.reset(control_env.num_users)
    if hasattr(treatment_human_fn, "reset"):
        treatment_human_fn.reset(treatment_env.num_users)
    if hasattr(treatment_act_fn, "reset"):
        treatment_act_fn.reset(treatment_env.num_users)

    control_rewards, treatment_rewards = [], []
    for index, day in enumerate(days):
        control_actions = control_fn(control_states, index)
        control_states, c_rewards, _, _ = control_env.step(control_actions)
        control_rewards.append(float(c_rewards.mean()))

        if day < deploy_day:
            treatment_actions = treatment_human_fn(treatment_states, index)
        else:
            treatment_actions = treatment_act_fn(treatment_states, index)
        treatment_states, t_rewards, _, _ = treatment_env.step(treatment_actions)
        treatment_rewards.append(float(t_rewards.mean()))

    return ABTestResult(
        days=days,
        control_rewards=np.array(control_rewards),
        treatment_rewards=np.array(treatment_rewards),
        deploy_day=deploy_day,
    )

"""k-means clustering for the Fig. 10 response-pattern analysis."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..utils.seeding import make_rng


def kmeans(
    data: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++ initialisation.

    Returns ``(centers [k, D], labels [N])``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be [N, D]")
    n = data.shape[0]
    if k <= 0 or k > n:
        raise ValueError("need 0 < k <= number of points")
    rng = rng or make_rng(0)

    # k-means++ seeding
    centers = np.empty((k, data.shape[1]))
    centers[0] = data[rng.integers(0, n)]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for index in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[index:] = data[rng.integers(0, n, size=k - index)]
            break
        probs = closest_sq / total
        centers[index] = data[rng.choice(n, p=probs)]
        dist = np.sum((data - centers[index]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist)

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        distances = np.linalg.norm(data[:, None, :] - centers[None, :, :], axis=2)
        labels = np.argmin(distances, axis=1)
        new_centers = centers.copy()
        for cluster in range(k):
            members = data[labels == cluster]
            if len(members) > 0:
                new_centers[cluster] = members.mean(axis=0)
        shift = np.linalg.norm(new_centers - centers)
        centers = new_centers
        if shift < tolerance:
            break
    return centers, labels


def cluster_inertia(data: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
    """Sum of squared distances to assigned centers (quality metric)."""
    return float(np.sum((data - centers[labels]) ** 2))

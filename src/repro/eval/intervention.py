"""The Fig. 10 intervention analysis: cluster drivers by predicted response.

For each simulator, every driver's predicted order increments over a ΔB
sweep form a *response vector*; k-means over these vectors exposes the
qualitative reaction patterns. Patterns with non-positive slopes violate
the positive-bonus-elasticity prior — the extrapolation pathology that
F_trend removes and that Sim2Rec-EE exploits for fake gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.filters import intervention_response
from ..sim.dataset import GroupTrajectories
from ..sim.ensemble import SimulatorEnsemble
from ..utils.seeding import make_rng
from .clustering import kmeans


@dataclass
class InterventionClusterResult:
    """Clustered response patterns for one simulator."""

    deltas: np.ndarray           # the ΔB grid
    centers: np.ndarray          # [k, D] cluster centers (baseline-subtracted)
    labels: np.ndarray           # [N] cluster id per driver
    cluster_slopes: np.ndarray   # [k] response slope of each center
    violating_fraction: float    # share of drivers in non-positive-slope clusters

    def violating_clusters(self) -> np.ndarray:
        return np.nonzero(self.cluster_slopes <= 0.0)[0]


def cluster_driver_responses(
    ensemble: SimulatorEnsemble,
    group_log: GroupTrajectories,
    member_index: int,
    num_clusters: int = 5,
    deltas: Optional[np.ndarray] = None,
    action_index: int = 1,
    seed: int = 0,
) -> InterventionClusterResult:
    """Reproduce one panel of Fig. 10 for ``ensemble[member_index]``.

    Response vectors are baseline-subtracted exactly as in the paper: "the
    increment of orders of each point is subtracted to the value in
    ΔB = −0.5 of the corresponding cluster" — here per driver, using the
    smallest ΔB as the origin.
    """
    if deltas is None:
        deltas = np.linspace(-0.5, 0.5, 9)
    single = SimulatorEnsemble([ensemble[member_index]])
    responses = intervention_response(single, group_log, deltas, action_index)[0]  # [N, D]
    relative = responses - responses[:, :1]
    centers, labels = kmeans(relative, num_clusters, rng=make_rng(seed))
    centered_d = deltas - deltas.mean()
    denom = float((centered_d**2).sum())
    slopes = ((centers - centers.mean(axis=1, keepdims=True)) * centered_d).sum(axis=1) / denom
    violating = np.isin(labels, np.nonzero(slopes <= 0.0)[0])
    return InterventionClusterResult(
        deltas=deltas,
        centers=centers,
        labels=labels,
        cluster_slopes=slopes,
        violating_fraction=float(violating.mean()),
    )


def consistent_violators(
    results: List[InterventionClusterResult],
) -> np.ndarray:
    """Drivers falling in a violating cluster in *every* simulator.

    The paper reports "15% of drivers always in cluster C among the
    simulators" — this computes that consistently-pathological set.
    """
    if not results:
        raise ValueError("need at least one clustering result")
    masks = []
    for result in results:
        bad_clusters = result.violating_clusters()
        masks.append(np.isin(result.labels, bad_clusters))
    return np.logical_and.reduce(masks)

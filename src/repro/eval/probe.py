"""The hidden-state prediction probe (Fig. 9b, following [15]).

If SADAE's embedding υ stores useful information about the underlying
distribution, a small network given ``(υ_i, υ_j)`` should be able to
predict ``KLD(X_i, X_j)`` between the corresponding datasets — and its
prediction error should fall as SADAE trains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..utils.seeding import make_rng
from .kld import dataset_kld


@dataclass
class ProbeConfig:
    hidden_units: int = 32
    learning_rate: float = 1e-2
    epochs: int = 60
    seed: Optional[int] = None


class KLDProbe:
    """One-hidden-layer (tanh) regressor from (υ_i, υ_j) to KLD."""

    def __init__(self, latent_dim: int, config: ProbeConfig = ProbeConfig()):
        self.latent_dim = latent_dim
        self.config = config
        self._build()

    def _build(self) -> None:
        rng = make_rng(self.config.seed)
        self.net = nn.MLP(
            [2 * self.latent_dim, self.config.hidden_units, 1], rng, activation="tanh"
        )

    def reinitialize(self) -> None:
        """Fresh weights — the paper retrains the probe at every checkpoint."""
        self._build()

    def fit(self, pairs: np.ndarray, targets: np.ndarray) -> List[float]:
        optimizer = nn.Adam(self.net.parameters(), lr=self.config.learning_rate)
        targets = np.asarray(targets, dtype=np.float64)[:, None]
        losses = []
        for _ in range(self.config.epochs):
            optimizer.zero_grad()
            loss = nn.mse_loss(self.net(nn.Tensor(pairs)), nn.Tensor(targets))
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return losses

    def predict(self, pairs: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            return self.net(nn.Tensor(pairs)).data[:, 0]

    def mean_absolute_error(self, pairs: np.ndarray, targets: np.ndarray) -> float:
        return float(np.mean(np.abs(self.predict(pairs) - np.asarray(targets))))


def build_probe_dataset(
    embeddings: Sequence[np.ndarray],
    datasets: Sequence[np.ndarray],
    num_pairs: int,
    rng: Optional[np.random.Generator] = None,
    max_kde_points: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample (υ_i ‖ υ_j) input pairs with Eq. (9) KLD targets."""
    if len(embeddings) != len(datasets) or len(embeddings) < 2:
        raise ValueError("need matching lists of at least two embeddings/datasets")
    rng = rng or make_rng(0)
    pairs, targets = [], []
    count = len(embeddings)
    for _ in range(num_pairs):
        i, j = rng.choice(count, size=2, replace=False)
        pairs.append(np.concatenate([embeddings[i], embeddings[j]]))
        targets.append(dataset_kld(datasets[i], datasets[j], max_points=max_kde_points))
    return np.stack(pairs), np.array(targets)


def probe_embedding_quality(
    embeddings: Sequence[np.ndarray],
    datasets: Sequence[np.ndarray],
    num_pairs: int = 40,
    config: ProbeConfig = ProbeConfig(),
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Train a fresh probe and return its held-in MAE (lower = better υ)."""
    rng = rng or make_rng(config.seed)
    pairs, targets = build_probe_dataset(embeddings, datasets, num_pairs, rng)
    probe = KLDProbe(len(embeddings[0]), config)
    probe.fit(pairs, targets)
    return probe.mean_absolute_error(pairs, targets)

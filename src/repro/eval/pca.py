"""Principal component analysis for the latent-code studies (Fig. 3 / 12).

The paper inspects SADAE's latent υ by PCA: after training, the cumulative
energy (eigenvalue) ratio shows the code collapsing onto one principal
component that tracks the ground-truth group parameter ω_g.
"""

from __future__ import annotations

import numpy as np


class PCA:
    """Eigendecomposition of the sample covariance."""

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("PCA needs a [N, D] array with N >= 2")
        self.mean = data.mean(axis=0)
        centered = data - self.mean
        covariance = centered.T @ centered / (data.shape[0] - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        self.eigenvalues = np.maximum(eigenvalues[order], 0.0)
        self.components = eigenvectors[:, order]  # columns are components

    def energy_ratio(self) -> np.ndarray:
        """Cumulative fraction of variance explained by the first k components."""
        total = self.eigenvalues.sum()
        if total <= 0:
            return np.ones_like(self.eigenvalues)
        return np.cumsum(self.eigenvalues) / total

    def transform(self, data: np.ndarray, k: int = 2) -> np.ndarray:
        """Project onto the first ``k`` principal components."""
        data = np.asarray(data, dtype=np.float64)
        return (data - self.mean) @ self.components[:, :k]

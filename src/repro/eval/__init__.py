"""Evaluation toolkit: KDE/KLD, PCA, clustering, probes, offline metrics."""

from .clustering import cluster_inertia, kmeans
from .intervention import (
    InterventionClusterResult,
    cluster_driver_responses,
    consistent_violators,
)
from .kde import GaussianKDE
from .kld import dataset_kld, gaussian_kld
from .metrics import (
    ABTestResult,
    expected_cumulative_reward,
    order_cost_increment,
    rollout_totals,
    run_ab_test,
)
from .pca import PCA
from .stats import ComparisonResult, bootstrap_mean_ci, paired_comparison
from .probe import KLDProbe, ProbeConfig, build_probe_dataset, probe_embedding_quality

__all__ = [
    "ABTestResult",
    "ComparisonResult",
    "bootstrap_mean_ci",
    "paired_comparison",
    "GaussianKDE",
    "InterventionClusterResult",
    "KLDProbe",
    "PCA",
    "ProbeConfig",
    "build_probe_dataset",
    "cluster_driver_responses",
    "cluster_inertia",
    "consistent_violators",
    "dataset_kld",
    "expected_cumulative_reward",
    "gaussian_kld",
    "kmeans",
    "order_cost_increment",
    "probe_embedding_quality",
    "rollout_totals",
    "run_ab_test",
]

"""KL-divergence metrics (Sec. V-A3, Eq. 9).

Two flavours:

- :func:`dataset_kld` — the paper's evaluation metric between a real and a
  reconstructed dataset, with PDFs estimated by KDE;
- :func:`gaussian_kld` — the analytic divergence used when both
  distributions are known Gaussians (the LTS case, Fig. 4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .kde import GaussianKDE


def dataset_kld(
    data_a: np.ndarray,
    data_b: np.ndarray,
    max_points: Optional[int] = None,
    seed: int = 0,
) -> float:
    """KLD(Da, Db) = (1/|Da|) Σ_{x∈Da} log f_a(x) / f_b(x)   (Eq. 9).

    ``f_a`` and ``f_b`` are KDE estimates of the two datasets' densities.
    ``max_points`` subsamples both datasets for tractability on large
    inputs (KDE evaluation is O(M·N)).
    """
    data_a = np.atleast_2d(np.asarray(data_a, dtype=np.float64))
    data_b = np.atleast_2d(np.asarray(data_b, dtype=np.float64))
    if data_a.ndim == 2 and data_a.shape[0] == 1:
        data_a = data_a.T
    if data_b.ndim == 2 and data_b.shape[0] == 1:
        data_b = data_b.T
    if max_points is not None:
        rng = np.random.default_rng(seed)
        if data_a.shape[0] > max_points:
            data_a = data_a[rng.choice(data_a.shape[0], max_points, replace=False)]
        if data_b.shape[0] > max_points:
            data_b = data_b[rng.choice(data_b.shape[0], max_points, replace=False)]
    kde_a = GaussianKDE(data_a)
    kde_b = GaussianKDE(data_b)
    log_fa = kde_a.logpdf(data_a)
    log_fb = kde_b.logpdf(data_a)
    return float(np.mean(log_fa - log_fb))


def gaussian_kld(
    mean_a: np.ndarray,
    std_a: np.ndarray,
    mean_b: np.ndarray,
    std_b: np.ndarray,
) -> float:
    """Analytic KL(N_a ‖ N_b) for diagonal Gaussians, summed over dims."""
    mean_a, std_a = np.atleast_1d(mean_a), np.atleast_1d(std_a)
    mean_b, std_b = np.atleast_1d(mean_b), np.atleast_1d(std_b)
    if np.any(std_a <= 0) or np.any(std_b <= 0):
        raise ValueError("standard deviations must be positive")
    var_ratio = (std_a / std_b) ** 2
    mean_term = ((mean_a - mean_b) / std_b) ** 2
    return float(0.5 * np.sum(var_ratio + mean_term - 1.0 - np.log(var_ratio)))

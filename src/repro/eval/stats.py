"""Statistical comparison utilities for policy evaluations.

The paper reports means over three seeds with standard-error shading; at
bench scale we additionally provide paired-bootstrap confidence intervals
and a permutation test so that "who wins" claims can be checked with
explicit uncertainty rather than point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..utils.seeding import make_rng


@dataclass
class ComparisonResult:
    """Outcome of a paired comparison between two per-unit reward arrays."""

    mean_difference: float
    ci_low: float
    ci_high: float
    p_value: float

    @property
    def significant(self) -> bool:
        """True when the 95% bootstrap CI excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def bootstrap_mean_ci(
    values: np.ndarray,
    num_resamples: int = 2000,
    confidence: float = 0.95,
    seed: Optional[int] = None,
) -> Tuple[float, float, float]:
    """(mean, ci_low, ci_high) of the sample mean via percentile bootstrap."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size < 2:
        raise ValueError("need at least two observations")
    rng = make_rng(seed)
    means = np.array(
        [
            values[rng.integers(0, values.size, size=values.size)].mean()
            for _ in range(num_resamples)
        ]
    )
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(low), float(high)


def paired_comparison(
    rewards_a: np.ndarray,
    rewards_b: np.ndarray,
    num_resamples: int = 2000,
    confidence: float = 0.95,
    seed: Optional[int] = None,
) -> ComparisonResult:
    """Paired bootstrap + sign-flip permutation test on per-unit rewards.

    ``rewards_a`` / ``rewards_b`` must be paired (same users, same seeds).
    The p-value is two-sided for the null "mean difference is zero".
    """
    a = np.asarray(rewards_a, dtype=np.float64).reshape(-1)
    b = np.asarray(rewards_b, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError("paired comparison needs equally shaped arrays")
    if a.size < 2:
        raise ValueError("need at least two pairs")
    differences = a - b
    rng = make_rng(seed)

    boot_means = np.array(
        [
            differences[rng.integers(0, differences.size, size=differences.size)].mean()
            for _ in range(num_resamples)
        ]
    )
    alpha = (1.0 - confidence) / 2.0
    ci_low, ci_high = np.quantile(boot_means, [alpha, 1.0 - alpha])

    observed = abs(differences.mean())
    flips = rng.choice([-1.0, 1.0], size=(num_resamples, differences.size))
    permuted = np.abs((flips * differences).mean(axis=1))
    p_value = float((permuted >= observed - 1e-15).mean())

    return ComparisonResult(
        mean_difference=float(differences.mean()),
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        p_value=p_value,
    )

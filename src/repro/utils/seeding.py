"""Deterministic random-number management.

Every stochastic component in the library takes an explicit
``numpy.random.Generator``; this module provides helpers to derive
independent child generators from a root seed so experiments are exactly
reproducible and components do not share RNG state accidentally.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Build a Generator from a seed, SeedSequence or pass through a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``."""
    if isinstance(seed, np.random.Generator):
        return [make_rng(int(seed.integers(0, 2**31 - 1))) for _ in range(count)]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngStream:
    """A named hierarchy of generators derived from one root seed.

    ``stream.child("policy")`` always returns the same generator for the
    same root seed and name, regardless of call order — this keeps
    multi-component training runs reproducible even when code paths change.
    """

    def __init__(self, seed: Optional[int] = 0):
        self._root = np.random.SeedSequence(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def child(self, name: str) -> np.random.Generator:
        if name not in self._cache:
            entropy = [int.from_bytes(name.encode("utf8"), "little") % (2**63)]
            derived = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(entropy)
            )
            self._cache[name] = np.random.default_rng(derived)
        return self._cache[name]

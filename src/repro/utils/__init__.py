"""Shared utilities: seeding, normalisation, logging."""

from .logging import MetricLogger
from .normalization import RewardScaler, RunningMeanStd
from .seeding import RngStream, make_rng, spawn_rngs

__all__ = [
    "MetricLogger",
    "RewardScaler",
    "RngStream",
    "RunningMeanStd",
    "make_rng",
    "spawn_rngs",
]

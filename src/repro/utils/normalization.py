"""Online feature normalisation (Welford) used by PPO observation scaling."""

from __future__ import annotations

import numpy as np


class RunningMeanStd:
    """Tracks running mean/variance of batches via the parallel Welford update."""

    def __init__(self, shape: tuple[int, ...] = (), epsilon: float = 1e-4):
        self.mean = np.zeros(shape, dtype=np.float64)
        self.var = np.ones(shape, dtype=np.float64)
        self.count = epsilon

    def update(self, batch: np.ndarray) -> None:
        batch = np.asarray(batch, dtype=np.float64)
        batch = batch.reshape(-1, *self.mean.shape) if self.mean.shape else batch.reshape(-1)
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]
        delta = batch_mean - self.mean
        total = self.count + batch_count
        self.mean = self.mean + delta * batch_count / total
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + delta**2 * self.count * batch_count / total
        self.var = m2 / total
        self.count = total

    def normalize(self, value: np.ndarray, clip: float = 10.0) -> np.ndarray:
        out = (np.asarray(value, dtype=np.float64) - self.mean) / np.sqrt(self.var + 1e-8)
        return np.clip(out, -clip, clip)

    def denormalize(self, value: np.ndarray) -> np.ndarray:
        return np.asarray(value) * np.sqrt(self.var + 1e-8) + self.mean


class RewardScaler:
    """Scales rewards by a running estimate of the return's std-dev.

    Keeps PPO value targets in a numerically friendly range without
    changing the optimal policy (a positive rescaling of rewards).
    """

    def __init__(self, gamma: float, epsilon: float = 1e-4):
        self.gamma = gamma
        self.rms = RunningMeanStd(shape=())
        self._returns: np.ndarray | None = None
        self.epsilon = epsilon

    def reset(self, batch: int) -> None:
        self._returns = np.zeros(batch, dtype=np.float64)

    def scale(self, rewards: np.ndarray, dones: np.ndarray) -> np.ndarray:
        rewards = np.asarray(rewards, dtype=np.float64)
        if self._returns is None or self._returns.shape != rewards.shape:
            self._returns = np.zeros_like(rewards)
        self._returns = self._returns * self.gamma + rewards
        self.rms.update(self._returns)
        # A done at this step ends the episode *after* its reward counts.
        self._returns = self._returns * (1.0 - np.asarray(dones, dtype=np.float64))
        return rewards / np.sqrt(self.rms.var + self.epsilon)

"""Lightweight metric logging for training loops.

Keeps scalar series in memory (for tests / benches to assert on) and can
render compact progress tables to stdout.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional


class MetricLogger:
    """Accumulates named scalar series indexed by step."""

    def __init__(self, verbose: bool = False, print_every: int = 1):
        self.verbose = verbose
        self.print_every = print_every
        self.history: Dict[str, List[tuple[int, float]]] = defaultdict(list)

    def log(self, step: int, **metrics: float) -> None:
        for key, value in metrics.items():
            self.history[key].append((step, float(value)))
        if self.verbose and step % self.print_every == 0:
            rendered = "  ".join(f"{k}={v:.4g}" for k, v in sorted(metrics.items()))
            print(f"[step {step:>6}] {rendered}")

    def series(self, key: str) -> List[float]:
        """The values of a metric in logging order."""
        return [value for _, value in self.history[key]]

    def steps(self, key: str) -> List[int]:
        return [step for step, _ in self.history[key]]

    def last(self, key: str, default: Optional[float] = None) -> Optional[float]:
        values = self.history.get(key)
        if not values:
            return default
        return values[-1][1]

    def mean(self, key: str, last_n: Optional[int] = None) -> float:
        values = self.series(key)
        if last_n is not None:
            values = values[-last_n:]
        if not values:
            raise KeyError(f"no values logged for {key!r}")
        return sum(values) / len(values)

"""Setuptools entry point.

A classic setup.py (rather than PEP 517 metadata alone) so that
``pip install -e .`` works in offline environments without the ``wheel``
package, via the legacy editable-install path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Sim2Rec: simulator-based decision-making for long-term user "
        "engagement (ICDE 2023) - full reproduction"
    ),
    author="Sim2Rec reproduction authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
